//! Allocation-free, fixed-bucket fairness telemetry.
//!
//! The fairness experiments need per-attempt statistics from inside
//! free-running attempt loops, where a `Vec`-backed
//! [`wfl_runtime::stats::Summary`] would put an allocation on the hot path
//! and unbounded memory on a soak. Everything here is fixed-size:
//!
//! * [`FixedHistogram`] — power-of-two buckets over `u64` samples,
//!   re-exported from `wfl_obs` (one implementation shared with the
//!   flight recorder's metric snapshots). Recording is O(1) with no
//!   allocation and merging conserves counts exactly.
//! * [`ProcTelemetry`] — one process's fairness view: attempts, wins, a
//!   try-count histogram (attempts needed per successful acquisition), an
//!   acquisition-latency histogram (own steps from the first try of an
//!   acquisition to its success), and the max stretch (the most tries any
//!   one acquisition needed, winning attempt included, finished or not).
//! * [`jain_index`] — Jain's fairness index `(Σx)² / (n·Σx²)`, the
//!   standard scalar for "how evenly is success distributed"; it is `1`
//!   for perfect equality and `1/n` when one process takes everything.

use wfl_runtime::stats::Bernoulli;

/// The shared fixed-bucket histogram, now owned by `wfl_obs` so the
/// flight recorder's metric snapshots and the fairness telemetry use one
/// implementation. Re-exported here unchanged for existing callers.
pub use wfl_obs::{FixedHistogram, BUCKETS};

/// One process's fairness telemetry (see module docs). Recording is
/// allocation-free; fold per-epoch instances into a cumulative one with
/// [`ProcTelemetry::merge`].
#[derive(Debug, Clone, Default)]
pub struct ProcTelemetry {
    /// Attempts made.
    pub attempts: u64,
    /// Attempts that won.
    pub wins: u64,
    /// Tries needed per successful acquisition (1 = first try).
    pub tries: FixedHistogram,
    /// Own steps per successful acquisition, summed over its tries.
    pub latency: FixedHistogram,
    /// Most tries any single acquisition has needed — the winning attempt
    /// included, so an always-winning process reports 1 — counting a
    /// streak still unfinished at the end of recording.
    pub max_stretch: u64,
    /// Attempts abandoned mid-flight (armed deadline expired / stop flag)
    /// instead of losing to a competitor. Aborts count as ordinary losses
    /// everywhere else in the telemetry (the streak keeps running).
    pub aborts: u64,
    /// Abandoned attempts a competitor's helping completed anyway — these
    /// also count as wins and close the streak.
    pub rescues: u64,
    /// Losing streak in progress.
    cur_tries: u64,
    /// Steps accumulated by the acquisition in progress.
    cur_steps: u64,
}

impl ProcTelemetry {
    /// Empty telemetry.
    pub fn new() -> ProcTelemetry {
        ProcTelemetry::default()
    }

    /// Records one attempt of `steps` own steps. On a win, the current
    /// streak closes into the try-count and latency histograms.
    pub fn record_attempt(&mut self, won: bool, steps: u64) {
        self.attempts += 1;
        self.cur_tries += 1;
        self.cur_steps = self.cur_steps.saturating_add(steps);
        self.max_stretch = self.max_stretch.max(self.cur_tries);
        if won {
            self.wins += 1;
            self.tries.record(self.cur_tries);
            self.latency.record(self.cur_steps);
            self.cur_tries = 0;
            self.cur_steps = 0;
        }
    }

    /// Records one attempt with its abort markers (see
    /// [`wfl_baselines::AttemptOutcome`]): `aborted` attempts tally
    /// separately so an adversary report can split "starved by
    /// competitors" from "gave up on its own SLO"; a `rescued` attempt is
    /// an aborted win.
    pub fn record_attempt_outcome(&mut self, won: bool, steps: u64, aborted: bool, rescued: bool) {
        self.record_attempt(won, steps);
        self.aborts += aborted as u64;
        self.rescues += rescued as u64;
    }

    /// Folds `other` (e.g. one epoch's telemetry) into `self`. Unfinished
    /// streaks contribute to `max_stretch` but not to the histograms, and
    /// do not continue across the fold (an epoch boundary genuinely ends
    /// the acquisition attempt — the arena it was attempting on is gone).
    pub fn merge(&mut self, other: &ProcTelemetry) {
        self.attempts += other.attempts;
        self.wins += other.wins;
        self.tries.merge(&other.tries);
        self.latency.merge(&other.latency);
        self.max_stretch = self.max_stretch.max(other.max_stretch);
        self.aborts += other.aborts;
        self.rescues += other.rescues;
    }

    /// The success-rate estimator over all recorded attempts.
    pub fn success(&self) -> Bernoulli {
        Bernoulli { successes: self.wins, trials: self.attempts }
    }

    /// Point success rate (0 if no attempts).
    pub fn rate(&self) -> f64 {
        self.success().rate()
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative allocations:
/// `1` for perfect equality, `1/n` when a single `x` takes everything;
/// always in `[1/n, 1]` for non-degenerate inputs. Degenerate inputs
/// (empty, or all zero — nobody got anything, which is vacuously even)
/// return `1`.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_tracks_streaks() {
        let mut t = ProcTelemetry::new();
        t.record_attempt(false, 10);
        t.record_attempt(false, 10);
        t.record_attempt(true, 10); // acquisition: 3 tries, 30 steps
        t.record_attempt(true, 5); // acquisition: 1 try, 5 steps
        t.record_attempt(false, 2); // unfinished streak
        assert_eq!(t.attempts, 5);
        assert_eq!(t.wins, 2);
        assert_eq!(t.max_stretch, 3);
        assert_eq!(t.tries.count(), 2);
        assert_eq!(t.tries.sum(), 4);
        assert_eq!(t.latency.sum(), 35);
        assert!((t.rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn telemetry_merge_folds_epochs() {
        let mut a = ProcTelemetry::new();
        a.record_attempt(true, 7);
        a.record_attempt(false, 7); // unfinished: stretch 1
        let mut b = ProcTelemetry::new();
        for _ in 0..4 {
            b.record_attempt(false, 3);
        }
        b.record_attempt(true, 3); // stretch 5
        a.merge(&b);
        assert_eq!(a.attempts, 7);
        assert_eq!(a.wins, 2);
        assert_eq!(a.max_stretch, 5);
        assert_eq!(a.tries.count(), 2, "unfinished streaks never enter the histogram");
    }

    #[test]
    fn jain_bounds_and_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        let mixed = jain_index(&[0.5, 0.25, 0.125, 0.125]);
        assert!(mixed > 0.25 && mixed < 1.0);
    }
}
