//! Allocation-free, fixed-bucket fairness telemetry.
//!
//! The fairness experiments need per-attempt statistics from inside
//! free-running attempt loops, where a `Vec`-backed
//! [`wfl_runtime::stats::Summary`] would put an allocation on the hot path
//! and unbounded memory on a soak. Everything here is fixed-size:
//!
//! * [`FixedHistogram`] — power-of-two buckets over `u64` samples. Bucket
//!   edges are monotone and recording is O(1) with no allocation; two
//!   histograms [`FixedHistogram::merge`] by adding counts (the same
//!   fold-at-the-epoch-boundary pattern as `Summary::merge`), which
//!   conserves both the sample count and the bucket totals exactly.
//! * [`ProcTelemetry`] — one process's fairness view: attempts, wins, a
//!   try-count histogram (attempts needed per successful acquisition), an
//!   acquisition-latency histogram (own steps from the first try of an
//!   acquisition to its success), and the max stretch (the most tries any
//!   one acquisition needed, winning attempt included, finished or not).
//! * [`jain_index`] — Jain's fairness index `(Σx)² / (n·Σx²)`, the
//!   standard scalar for "how evenly is success distributed"; it is `1`
//!   for perfect equality and `1/n` when one process takes everything.

use wfl_runtime::stats::Bernoulli;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 33;

/// A fixed-bucket power-of-two histogram over `u64` samples (see module
/// docs). `Copy`-free but fixed-size: safe to keep per-process and merge
/// at epoch boundaries.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram { counts: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> FixedHistogram {
        FixedHistogram::default()
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Inclusive upper edge of bucket `i` (saturating for the last bucket).
    pub fn bucket_hi(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample (O(1), allocation-free).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` by adding bucket counts — the epoch
    /// boundary fold. Conserves counts: afterwards every bucket (and the
    /// total) equals the sum of the two inputs'.
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Nearest-rank `q`-quantile **upper bound**: the upper edge of the
    /// bucket holding the rank, clamped to the recorded maximum (so `q =
    /// 1` returns a value `>=` the true max's bucket resolution, never
    /// `u64::MAX` noise). 0 if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_hi(i).min(self.max);
            }
        }
        self.max
    }
}

/// One process's fairness telemetry (see module docs). Recording is
/// allocation-free; fold per-epoch instances into a cumulative one with
/// [`ProcTelemetry::merge`].
#[derive(Debug, Clone, Default)]
pub struct ProcTelemetry {
    /// Attempts made.
    pub attempts: u64,
    /// Attempts that won.
    pub wins: u64,
    /// Tries needed per successful acquisition (1 = first try).
    pub tries: FixedHistogram,
    /// Own steps per successful acquisition, summed over its tries.
    pub latency: FixedHistogram,
    /// Most tries any single acquisition has needed — the winning attempt
    /// included, so an always-winning process reports 1 — counting a
    /// streak still unfinished at the end of recording.
    pub max_stretch: u64,
    /// Attempts abandoned mid-flight (armed deadline expired / stop flag)
    /// instead of losing to a competitor. Aborts count as ordinary losses
    /// everywhere else in the telemetry (the streak keeps running).
    pub aborts: u64,
    /// Abandoned attempts a competitor's helping completed anyway — these
    /// also count as wins and close the streak.
    pub rescues: u64,
    /// Losing streak in progress.
    cur_tries: u64,
    /// Steps accumulated by the acquisition in progress.
    cur_steps: u64,
}

impl ProcTelemetry {
    /// Empty telemetry.
    pub fn new() -> ProcTelemetry {
        ProcTelemetry::default()
    }

    /// Records one attempt of `steps` own steps. On a win, the current
    /// streak closes into the try-count and latency histograms.
    pub fn record_attempt(&mut self, won: bool, steps: u64) {
        self.attempts += 1;
        self.cur_tries += 1;
        self.cur_steps = self.cur_steps.saturating_add(steps);
        self.max_stretch = self.max_stretch.max(self.cur_tries);
        if won {
            self.wins += 1;
            self.tries.record(self.cur_tries);
            self.latency.record(self.cur_steps);
            self.cur_tries = 0;
            self.cur_steps = 0;
        }
    }

    /// Records one attempt with its abort markers (see
    /// [`wfl_baselines::AttemptOutcome`]): `aborted` attempts tally
    /// separately so an adversary report can split "starved by
    /// competitors" from "gave up on its own SLO"; a `rescued` attempt is
    /// an aborted win.
    pub fn record_attempt_outcome(&mut self, won: bool, steps: u64, aborted: bool, rescued: bool) {
        self.record_attempt(won, steps);
        self.aborts += aborted as u64;
        self.rescues += rescued as u64;
    }

    /// Folds `other` (e.g. one epoch's telemetry) into `self`. Unfinished
    /// streaks contribute to `max_stretch` but not to the histograms, and
    /// do not continue across the fold (an epoch boundary genuinely ends
    /// the acquisition attempt — the arena it was attempting on is gone).
    pub fn merge(&mut self, other: &ProcTelemetry) {
        self.attempts += other.attempts;
        self.wins += other.wins;
        self.tries.merge(&other.tries);
        self.latency.merge(&other.latency);
        self.max_stretch = self.max_stretch.max(other.max_stretch);
        self.aborts += other.aborts;
        self.rescues += other.rescues;
    }

    /// The success-rate estimator over all recorded attempts.
    pub fn success(&self) -> Bernoulli {
        Bernoulli { successes: self.wins, trials: self.attempts }
    }

    /// Point success rate (0 if no attempts).
    pub fn rate(&self) -> f64 {
        self.success().rate()
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative allocations:
/// `1` for perfect equality, `1/n` when a single `x` takes everything;
/// always in `[1/n, 1]` for non-degenerate inputs. Degenerate inputs
/// (empty, or all zero — nobody got anything, which is vacuously even)
/// return `1`.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sumsq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_cover() {
        for i in 1..BUCKETS {
            assert!(FixedHistogram::bucket_lo(i) > FixedHistogram::bucket_hi(i - 1));
            assert!(FixedHistogram::bucket_lo(i) <= FixedHistogram::bucket_hi(i));
        }
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = FixedHistogram::bucket_of(v);
            assert!(FixedHistogram::bucket_lo(b) <= v && v <= FixedHistogram::bucket_hi(b), "{v}");
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = FixedHistogram::new();
        for v in [0u64, 1, 1, 2, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 109);
        assert_eq!(h.max(), 100);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 2);
        assert!(h.percentile(0.0) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(1.0));
        assert_eq!(h.percentile(1.0), 100, "p100 clamps to the recorded max");
    }

    #[test]
    fn merge_conserves_counts() {
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
            b.record(v * 7);
        }
        let (ca, cb) = (a.count(), b.count());
        let per_bucket: Vec<u64> =
            (0..BUCKETS).map(|i| a.bucket_count(i) + b.bucket_count(i)).collect();
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        for (i, &want) in per_bucket.iter().enumerate() {
            assert_eq!(a.bucket_count(i), want, "bucket {i}");
        }
    }

    #[test]
    fn telemetry_tracks_streaks() {
        let mut t = ProcTelemetry::new();
        t.record_attempt(false, 10);
        t.record_attempt(false, 10);
        t.record_attempt(true, 10); // acquisition: 3 tries, 30 steps
        t.record_attempt(true, 5); // acquisition: 1 try, 5 steps
        t.record_attempt(false, 2); // unfinished streak
        assert_eq!(t.attempts, 5);
        assert_eq!(t.wins, 2);
        assert_eq!(t.max_stretch, 3);
        assert_eq!(t.tries.count(), 2);
        assert_eq!(t.tries.sum(), 4);
        assert_eq!(t.latency.sum(), 35);
        assert!((t.rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn telemetry_merge_folds_epochs() {
        let mut a = ProcTelemetry::new();
        a.record_attempt(true, 7);
        a.record_attempt(false, 7); // unfinished: stretch 1
        let mut b = ProcTelemetry::new();
        for _ in 0..4 {
            b.record_attempt(false, 3);
        }
        b.record_attempt(true, 3); // stretch 5
        a.merge(&b);
        assert_eq!(a.attempts, 7);
        assert_eq!(a.wins, 2);
        assert_eq!(a.max_stretch, 5);
        assert_eq!(a.tries.count(), 2, "unfinished streaks never enter the histogram");
    }

    #[test]
    fn jain_bounds_and_extremes() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        let mixed = jain_index(&[0.5, 0.25, 0.125, 0.125]);
        assert!(mixed > 0.25 && mixed < 1.0);
    }
}
