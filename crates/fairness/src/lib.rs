//! `wfl_fairness` — fairness telemetry and the adaptive player adversary
//! on real hardware.
//!
//! The paper's headline guarantee (Theorem 6.9) is about an **adaptive
//! adversary**: however the player times competitor attempts — even with
//! full knowledge of the history — a victim's per-attempt success
//! probability cannot be pushed below `1/C_p`. The simulator has exercised
//! that claim since E7; this crate measures it where it is hardest, on
//! free-running threads, and packages the measurement machinery:
//!
//! * [`telemetry`] — allocation-free fixed-bucket histograms (per-
//!   acquisition try counts and latencies), per-process success counts,
//!   max stretch, tail percentiles, and Jain's fairness index, all folded
//!   per-epoch by `merge` like the harness's `Summary`s.
//! * [`adversary`] — [`adversary::run_adversary`]: one entry point driving
//!   the victim-vs-competitors game under any
//!   [`wfl_workloads::harness::AlgoKind`] on either
//!   [`wfl_workloads::harness::ExecMode`] backend. The sim arm is the E7
//!   construction (deterministic, parity-testable); the real arm runs
//!   competitor threads that *observe* the victim's published attempt
//!   state through its probe cell ([`wfl_core::Scratch::probe`]) and
//!   flood precisely inside its pre-reveal window, built on the epoch
//!   lifecycle so adversarial soaks run for their full wall budget.
//!
//! Recorded real runs also produce per-lock **holder sequences** and a
//! `HOLD_OP` attempt history for `wfl_lincheck::holders` — every
//! adversary run doubles as a mutual-exclusion audit.
//!
//! Experiment E15 (`e15_fairness`) sweeps victim success and fairness
//! cells across algorithms × threads × adversary strength and gates CI on
//! the paper bound.

pub mod adversary;
pub mod telemetry;

pub use adversary::{holder_token, run_adversary, AdversarySpec, FairnessReport};
pub use telemetry::{jain_index, FixedHistogram, ProcTelemetry, BUCKETS};
pub use wfl_workloads::player::{flood_decision, AdvStrength, PROBE_OPAQUE};
