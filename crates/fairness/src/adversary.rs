//! The adaptive player adversary on **both execution backends**.
//!
//! A victim process (pid 0) attempts on a fixed cadence; every other
//! process is a competitor the adversary aims at it. The adaptive decision
//! — *flood strong contenders exactly while the victim is exposed* — is
//! [`wfl_workloads::player::flood_decision`], shared verbatim between:
//!
//! * **Sim**: the E7 construction, ported behind [`ExecMode`]: a
//!   [`TargetedStarter`] controller watches the victim's probe cell
//!   between steps and feeds competitor commands into mailboxes
//!   (deterministic, parity-testable against a hand-rolled E7 run).
//! * **Real threads**: competitor threads observe the probe cell
//!   themselves (uncounted peeks — the adversary's omniscience) and launch
//!   attempts when the decision fires. Built on the epoch lifecycle
//!   ([`wfl_runtime::epoch`]): a timed run with an epoch length keeps
//!   opening fresh heap lifetimes until the wall budget is spent, so
//!   adversarial soaks are unbounded by the tag space.
//!
//! Every attempt's critical section bumps the contested lock's acquisition
//! counter and appends its unique holder token to the lock's **holder
//! log** ([`HolderTouch`]); the per-epoch safety check (counter == recorded
//! wins) makes each adversary run a mutual-exclusion test, and recorded
//! runs feed the logs plus a [`HOLD_OP`]-bracketed history through
//! `wfl_lincheck::holders` for the holder-exclusivity audit.

use crate::telemetry::{jain_index, ProcTelemetry};
use std::sync::{Mutex, RwLock};
use std::time::Duration;
use wfl_core::{LockId, Scratch, TryLockRequest};
use wfl_idem::tag::MIN_PROCESS_CAPACITY;
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk, ThunkId};
use wfl_lincheck::holders::HOLD_OP;
use wfl_runtime::epoch::{run_epoch_worker, EpochState, EpochSync};
use wfl_runtime::real::run_threads_epochs;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::stats::Bernoulli;
use wfl_runtime::{Addr, CachePadded, Ctx, Heap, History};
use wfl_workloads::harness::{AlgoHandle, AlgoKind, ExecMode};
use wfl_workloads::player::{
    flood_decision, run_player_loop_stats, AdvStrength, TargetedStarter, PROBE_OPAQUE,
};

/// Shape of one adversary run. The victim is always pid 0.
#[derive(Debug, Clone, Copy)]
pub struct AdversarySpec {
    /// Processes: one victim plus `nprocs - 1` competitors.
    pub nprocs: usize,
    /// Victim attempts: total for untimed runs, per epoch for timed
    /// epoch-batched runs (competitors attempt as often as the adversary
    /// decides, up to the tag space).
    pub rounds: usize,
    /// Contested locks. Each epoch contests lock `epoch % nlocks` (the
    /// adversary's optimal play is a single lock; rotating across epochs
    /// spreads the holder audit over several locks). The sim arm is
    /// single-epoch and requires 1.
    pub nlocks: usize,
    /// Adversary aggressiveness.
    pub strength: AdvStrength,
    /// Victim cadence: global steps between attempt starts in sim; the
    /// victim's think steps between attempts on real threads (also the
    /// competitors' think under [`AdvStrength::Calm`]).
    pub victim_period: u64,
    /// Workload seed.
    pub seed: u64,
    /// Arena words.
    pub heap_words: usize,
    /// Real arm: record `HOLD_OP`-bracketed attempt events and the holder
    /// logs for the first `nlocks` epochs (use a `Precise`-clock
    /// [`wfl_runtime::real::RealConfig`] so event timestamps are globally
    /// ordered for the audit).
    pub record: bool,
}

impl AdversarySpec {
    /// A spec with the E7 defaults: one contested lock, the targeted
    /// (paper) adversary, victim cadence 600.
    pub fn new(nprocs: usize, rounds: usize) -> AdversarySpec {
        assert!(nprocs >= 2, "an adversary run needs a victim and a competitor");
        AdversarySpec {
            nprocs,
            rounds,
            nlocks: 1,
            strength: AdvStrength::Targeted,
            victim_period: 600,
            seed: 1,
            heap_words: 1 << 22,
            record: false,
        }
    }
}

/// Aggregated results of an adversary run.
#[derive(Debug)]
pub struct FairnessReport {
    /// Per-process fairness telemetry, merged across every epoch
    /// (index 0 = the victim).
    pub per_proc: Vec<ProcTelemetry>,
    /// Whether every epoch's acquisition counter matched its recorded wins
    /// exactly (the mutual-exclusion check).
    pub safety_ok: bool,
    /// Heap lifetimes the run spanned.
    pub epochs: u64,
    /// Wall-clock duration (real runs only).
    pub wall: Option<Duration>,
    /// `HOLD_OP` attempt events from the recorded epochs (empty unless
    /// `record` was set on a real run).
    pub history: History,
    /// Per-lock holder sequences from the recorded epochs: `(lock id,
    /// tokens in acquisition order)`.
    pub holder_logs: Vec<(u64, Vec<u64>)>,
}

impl FairnessReport {
    /// The victim's pid.
    pub const VICTIM: usize = 0;

    /// The victim's telemetry.
    pub fn victim(&self) -> &ProcTelemetry {
        &self.per_proc[Self::VICTIM]
    }

    /// The victim's success-rate estimator (the Theorem 6.9 quantity).
    pub fn victim_success(&self) -> Bernoulli {
        self.victim().success()
    }

    /// Jain's fairness index over the per-process success *rates* of every
    /// process that attempted at all. Rates, not win counts: the victim
    /// and the competitors attempt at very different frequencies by
    /// design, and the paper's guarantee is per-attempt.
    pub fn jain_rates(&self) -> f64 {
        let rates: Vec<f64> =
            self.per_proc.iter().filter(|t| t.attempts > 0).map(|t| t.rate()).collect();
        jain_index(&rates)
    }

    /// Total attempts across all processes.
    pub fn attempts(&self) -> u64 {
        self.per_proc.iter().map(|t| t.attempts).sum()
    }

    /// Total wins across all processes.
    pub fn wins(&self) -> u64 {
        self.per_proc.iter().map(|t| t.wins).sum()
    }
}

/// The unique 32-bit holder token of attempt `slot` by `pid` (fits a
/// tagged cell's value; slots are bounded by the per-epoch tag space).
pub fn holder_token(pid: usize, slot: usize) -> u32 {
    debug_assert!(slot < (1 << 16) - 1 && pid < (1 << 15));
    ((pid as u32 + 1) << 16) | (slot as u32 + 1)
}

/// Critical section of every adversary attempt: bump the contested lock's
/// acquisition counter and append the attempt's holder token at the log
/// slot the counter named. Args: `[counter, log base, log capacity,
/// token]`; a zero capacity skips the log (unrecorded epochs).
struct HolderTouch;

impl Thunk for HolderTouch {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let counter = Addr::from_word(run.arg(0));
        let seq = run.read(counter);
        run.write(counter, seq + 1);
        if (seq as u64) < run.arg(2) {
            run.write(Addr::from_word(run.arg(1)).off(seq), run.arg(3) as u32);
        }
    }
    fn max_ops(&self) -> usize {
        3
    }
}

/// `L` and `T` of every adversary attempt: one lock, a three-operation
/// critical section.
const L_MAX: usize = 1;
const T_MAX: usize = 3;

/// Runs the player adversary under `algo` on either backend (see module
/// docs). The sim arm is the ported E7 construction (one epoch, one lock,
/// victim commanded on a cadence, competitors commanded by the
/// [`TargetedStarter`]); the real arm runs the same decision logic with
/// free-running observer competitors on the epoch lifecycle.
///
/// # Panics
/// Panics on spec/mode mismatches (sim with `nlocks != 1` or epoch
/// batching; real with `threads != nprocs`), on process panics, and on a
/// per-epoch round count above the tag space.
pub fn run_adversary(spec: &AdversarySpec, algo: AlgoKind, mode: &ExecMode) -> FairnessReport {
    assert!(spec.nprocs >= 2);
    match *mode {
        ExecMode::Sim { sched, max_steps, epoch_rounds, .. } => {
            assert!(epoch_rounds.is_none(), "sim adversary runs are single-epoch");
            assert_eq!(spec.nlocks, 1, "the sim adversary contests a single lock");
            run_sim(spec, algo, sched, max_steps)
        }
        ExecMode::Real { threads, run_for, cfg, epoch_rounds, .. } => {
            assert_eq!(threads, spec.nprocs, "ExecMode::Real.threads must equal spec.nprocs");
            run_real(spec, algo, run_for, cfg, epoch_rounds.is_some(), mode)
        }
    }
}

// ---------------------------------------------------------------------------
// Sim arm (the E7 port)
// ---------------------------------------------------------------------------

fn run_sim(
    spec: &AdversarySpec,
    algo: AlgoKind,
    sched: wfl_workloads::harness::SchedKind,
    max_steps: u64,
) -> FairnessReport {
    let rounds = spec.rounds;
    assert!(rounds <= MIN_PROCESS_CAPACITY as usize, "rounds exceed the tag space");
    let mut registry = Registry::new();
    let touch = registry.register(HolderTouch);
    let heap = Heap::new(spec.heap_words);
    // Allocation order is part of the sim arm's contract (the parity test
    // reconstructs it): lock records, counter, results, step log, probe.
    let handle = AlgoHandle::create(&heap, &registry, algo, 1, spec.nprocs, L_MAX, T_MAX);
    let counter = heap.alloc_root(1);
    let results = heap.alloc_root(spec.nprocs * rounds);
    let steps_log = heap.alloc_root(spec.nprocs * rounds);
    let probe = heap.alloc_root(1);

    let adversary = TargetedStarter {
        victim: 0,
        competitors: (1..spec.nprocs).collect(),
        locks: vec![LockId(0)],
        // No holder log in sim: commands carry one fixed arg set, and the
        // log needs a distinct token per attempt.
        args: vec![counter.to_word(), 0, 0, 0],
        victim_period: spec.victim_period,
        victim_desc_cell: probe,
        strength: spec.strength,
        issued: 0,
    };
    let handle_ref = &handle;
    let report = SimBuilder::new(&heap, spec.nprocs)
        .seed(spec.seed)
        .schedule_box(sched.build(spec.nprocs, spec.seed))
        .controller(adversary)
        .max_steps(max_steps)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                if pid == 0 {
                    scratch.probe = Some(probe);
                }
                let base = (pid * rounds) as u32;
                handle_ref.with(|a| {
                    run_player_loop_stats(
                        ctx,
                        a,
                        &mut tags,
                        &mut scratch,
                        touch,
                        results.off(base),
                        steps_log.off(base),
                        rounds as u64,
                    )
                });
            }
        })
        .run();
    report.assert_clean();

    let mut per_proc = vec![ProcTelemetry::new(); spec.nprocs];
    let mut total_wins = 0u64;
    for (pid, tel) in per_proc.iter_mut().enumerate() {
        for slot in 0..rounds {
            let idx = (pid * rounds + slot) as u32;
            match heap.peek(results.off(idx)) {
                0 => break,
                o => {
                    tel.record_attempt(o == 2, heap.peek(steps_log.off(idx)));
                    total_wins += (o == 2) as u64;
                }
            }
        }
    }
    let safety_ok = cell::value(heap.peek(counter)) as u64 == total_wins;
    FairnessReport {
        per_proc,
        safety_ok,
        epochs: 1,
        wall: None,
        history: report.history,
        holder_logs: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Real arm (free-running observer competitors on the epoch lifecycle)
// ---------------------------------------------------------------------------

/// Everything re-created at each epoch boundary.
struct World<'reg> {
    algo: AlgoHandle<'reg>,
    /// The lock contested this epoch (`epoch % nlocks`).
    lock: LockId,
    /// The lock's acquisition counter (a tagged cell).
    counter: Addr,
    /// The lock's holder log (`log_cap` tagged cells).
    log: Addr,
    /// The victim's probe cell.
    probe: Addr,
    /// Raised by the victim when its batch is over; competitors drain.
    epoch_done: Addr,
}

/// Boundary-folded run state.
struct Acc {
    safety_ok: bool,
    epochs: u64,
    holder_logs: Vec<(u64, Vec<u64>)>,
}

fn run_real(
    spec: &AdversarySpec,
    algo: AlgoKind,
    run_for: Option<Duration>,
    cfg: wfl_runtime::real::RealConfig,
    batched: bool,
    mode: &ExecMode,
) -> FairnessReport {
    assert!(spec.nlocks >= 1);
    let nprocs = spec.nprocs;
    let epoch_len = mode.epoch_len(spec.rounds);
    assert!(epoch_len <= MIN_PROCESS_CAPACITY as usize, "epoch length exceeds the tag space");
    // A timed run with an epoch length keeps opening epochs until the
    // deadline (the soak shape); otherwise the victim's total is `rounds`.
    let unbounded = run_for.is_some() && batched;
    // The holder audit's real-time-precedence condition is only sound on
    // globally ordered timestamps; leased clocks hand out per-thread
    // blocks, which would make the audit flag correct runs.
    assert!(
        !spec.record || cfg.clock == wfl_runtime::ClockMode::Precise,
        "recorded adversary runs need RealConfig::precise (globally ordered event timestamps)"
    );
    let record_epochs = if spec.record { spec.nlocks as u64 } else { 0 };
    let log_cap = if spec.record {
        // Upper bound on one epoch's wins: the victim's batch plus every
        // competitor's whole tag space.
        epoch_len + (nprocs - 1) * MIN_PROCESS_CAPACITY as usize
    } else {
        0
    };

    let mut registry = Registry::new();
    let touch = registry.register(HolderTouch);
    let heap = Heap::new(spec.heap_words);
    // The epoch mark precedes every root: boundaries rewind the lock
    // records, counter, log and probe wholesale.
    let state = EpochState::new(&heap);
    let registry_ref = &registry;
    let heap_ref = &heap;
    let make_world = |epoch: usize| World {
        algo: AlgoHandle::create(heap_ref, registry_ref, algo, spec.nlocks, nprocs, L_MAX, T_MAX),
        lock: LockId((epoch % spec.nlocks) as u32),
        counter: heap_ref.alloc_root(1),
        log: heap_ref.alloc_root(log_cap.max(1)),
        probe: heap_ref.alloc_root(1),
        epoch_done: heap_ref.alloc_root(1),
    };

    let sync = EpochSync::new(nprocs);
    let world = RwLock::new(make_world(0));
    // One telemetry slot per process, each padded to its own cache line:
    // every worker merges into its slot at every epoch boundary, and the
    // unpadded mutexes used to share lines (false-sharing audit,
    // DESIGN.md §1.3).
    let slots: Vec<CachePadded<Mutex<ProcTelemetry>>> =
        (0..nprocs).map(|_| CachePadded(Mutex::new(ProcTelemetry::new()))).collect();
    // Wins recorded by everyone during the current epoch (the leader takes
    // and resets it at the boundary; workers add before arriving, so the
    // barrier orders the additions before the take).
    let epoch_wins = Mutex::new(0u64);
    let acc = Mutex::new(Acc { safety_ok: true, epochs: 0, holder_logs: Vec::new() });

    let (sync_ref, state_ref, world_ref, slots_ref, wins_ref, acc_ref, make_world_ref, spec_ref) =
        (&sync, &state, &world, &slots, &epoch_wins, &acc, &make_world, spec);
    let report = run_threads_epochs(&heap, nprocs, spec.seed, run_for, cfg, &state, &sync, |pid| {
        move |ctx: &Ctx| {
            let mut tags = TagSource::new(pid);
            let mut scratch = Scratch::new();
            run_epoch_worker(
                ctx,
                sync_ref,
                |ctx, epoch| {
                    // A fresh heap lifetime: rewind the tag counters
                    // (sound at the quiescent boundary, DESIGN.md §1.1)
                    // and drop stale allocation pressure.
                    tags.reset();
                    ctx.reset_heap_low();
                    let w = world_ref.read().unwrap();
                    let recording = epoch < record_epochs;
                    let mut tel = ProcTelemetry::new();
                    let mut wins = 0u64;
                    if pid == 0 {
                        let rounds = if unbounded {
                            epoch_len
                        } else {
                            epoch_len.min(spec_ref.rounds.saturating_sub(epoch as usize * epoch_len))
                        };
                        victim_batch(
                            ctx, &w, spec_ref, touch, log_cap, rounds, recording, &mut tags,
                            &mut scratch, &mut tel, &mut wins,
                        );
                    } else {
                        competitor_batch(
                            ctx, &w, spec_ref, touch, log_cap, pid, recording, &mut tags,
                            &mut scratch, &mut tel, &mut wins,
                        );
                    }
                    slots_ref[pid].0.lock().unwrap().merge(&tel);
                    *wins_ref.lock().unwrap() += wins;
                },
                |ctx, epoch| {
                    // Leader, at quiescence: the mutual-exclusion check —
                    // the contested lock's counter must equal exactly the
                    // wins everyone recorded this epoch.
                    let heap = ctx.heap();
                    let mut w = world_ref.write().unwrap();
                    let wins = std::mem::take(&mut *wins_ref.lock().unwrap());
                    let counted = cell::value(heap.peek(w.counter)) as u64;
                    let mut a = acc_ref.lock().unwrap();
                    a.safety_ok &= counted == wins;
                    a.epochs += 1;
                    if epoch < record_epochs {
                        let n = (counted as usize).min(log_cap);
                        let tokens: Vec<u64> = (0..n)
                            .map(|k| cell::value(heap.peek(w.log.off(k as u32))) as u64)
                            .collect();
                        a.holder_logs.push((w.lock.0 as u64, tokens));
                    }
                    drop(a);
                    let next_base = (epoch as usize + 1) * epoch_len;
                    let done =
                        ctx.stop_requested() || (!unbounded && next_base >= spec_ref.rounds);
                    if done {
                        state_ref.finish(heap);
                        false
                    } else {
                        state_ref.advance(heap);
                        *w = make_world_ref(epoch as usize + 1);
                        true
                    }
                },
            );
        }
    });
    report.assert_clean();
    let acc = acc.into_inner().unwrap();
    assert_eq!(
        report.epochs, acc.epochs,
        "driver epoch count disagrees with boundary aggregation"
    );
    FairnessReport {
        per_proc: slots.into_iter().map(|m| m.0.into_inner().unwrap()).collect(),
        safety_ok: acc.safety_ok,
        epochs: acc.epochs,
        wall: Some(report.wall),
        history: report.history,
        holder_logs: acc.holder_logs,
    }
}

/// One attempt on the contested lock, bracketed for the holder audit when
/// recording: invoke **before** the attempt and respond after, so the
/// event interval covers the critical section.
#[allow(clippy::too_many_arguments)]
fn contested_attempt(
    ctx: &Ctx<'_>,
    w: &World<'_>,
    touch: ThunkId,
    log_cap: usize,
    pid: usize,
    slot: usize,
    recording: bool,
    tags: &mut TagSource,
    scratch: &mut Scratch,
) -> wfl_baselines::AttemptOutcome {
    let token = holder_token(pid, slot);
    let locks = [w.lock];
    let args =
        [w.counter.to_word(), w.log.to_word(), log_cap as u64, token as u64];
    let req = TryLockRequest { locks: &locks, thunk: touch, args: &args };
    if recording {
        ctx.invoke(HOLD_OP, w.lock.0 as u64, token as u64);
    }
    let out = w.algo.with(|a| a.attempt(ctx, tags, scratch, &req));
    if recording {
        ctx.respond(out.won as u64, vec![]);
    }
    out
}

/// The victim's epoch batch: `rounds` attempts on a fixed cadence, each
/// published through the probe cell, ending with the epoch-done signal
/// that drains the competitors to the barrier.
#[allow(clippy::too_many_arguments)]
fn victim_batch(
    ctx: &Ctx<'_>,
    w: &World<'_>,
    spec: &AdversarySpec,
    touch: ThunkId,
    log_cap: usize,
    rounds: usize,
    recording: bool,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    tel: &mut ProcTelemetry,
    wins: &mut u64,
) {
    // The paper's algorithms overwrite the sentinel with the descriptor
    // address, giving the adversary reveal-window precision; baselines
    // stay opaque.
    scratch.probe = Some(w.probe);
    for slot in 0..rounds {
        if ctx.stop_requested() || ctx.heap_low() {
            break;
        }
        ctx.write_rel(w.probe, PROBE_OPAQUE);
        let out = contested_attempt(ctx, w, touch, log_cap, 0, slot, recording, tags, scratch);
        ctx.write_rel(w.probe, 0);
        tel.record_attempt_outcome(out.won, out.steps, out.aborted, out.rescued);
        *wins += out.won as u64;
        for _ in 0..spec.victim_period {
            ctx.local_step();
        }
    }
    scratch.probe = None;
    // Unconditional: competitors must drain even if this batch broke early.
    ctx.write_rel(w.epoch_done, 1);
}

/// A competitor's epoch batch: observe the victim's probe cell (uncounted
/// peeks — adversary omniscience) and attempt whenever the shared flood
/// decision fires, until the victim closes the epoch or the tag space
/// runs out.
#[allow(clippy::too_many_arguments)]
fn competitor_batch(
    ctx: &Ctx<'_>,
    w: &World<'_>,
    spec: &AdversarySpec,
    touch: ThunkId,
    log_cap: usize,
    pid: usize,
    recording: bool,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    tel: &mut ProcTelemetry,
    wins: &mut u64,
) {
    let heap = ctx.heap();
    let mut slot = 0usize;
    loop {
        if ctx.stop_requested() || ctx.heap_low() || heap.peek(w.epoch_done) != 0 {
            break;
        }
        // Per-epoch attempt budget: the *guaranteed* capacity, not this
        // pid's actual serial count (pids >= 1 own one extra serial; the
        // holder log is sized `MIN_PROCESS_CAPACITY` per competitor, so
        // spending that extra serial could overflow a recorded log and
        // trip the audit on a correct run).
        if tags.remaining() == 0 || slot >= MIN_PROCESS_CAPACITY as usize {
            break; // budget spent; wait out the epoch at the barrier
        }
        let go = match spec.strength {
            AdvStrength::Calm => true, // cadence-based: think below
            s => flood_decision(heap, w.probe, s),
        };
        if !go {
            std::hint::spin_loop();
            continue;
        }
        let out = contested_attempt(ctx, w, touch, log_cap, pid, slot, recording, tags, scratch);
        tel.record_attempt_outcome(out.won, out.steps, out.aborted, out.rescued);
        *wins += out.won as u64;
        slot += 1;
        if spec.strength == AdvStrength::Calm {
            for _ in 0..spec.victim_period {
                ctx.local_step();
            }
        }
    }
}
