//! Per-attempt and per-operation metrics reported by the lock algorithm.

/// Outcome and cost of one tryLock attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptMetrics {
    /// Whether the attempt acquired all its locks (and its thunk ran).
    pub won: bool,
    /// Own steps consumed by the attempt, start to finish.
    pub steps: u64,
    /// Descriptors helped during the pre-insert helping phase.
    pub helped: u64,
    /// True if the attempt's real work exceeded the `T0` delay target
    /// before the reveal step (the configured `c0` is too small for the
    /// workload; fairness guarantees are then void).
    pub delay_overrun: bool,
}

/// Outcome and cost of a retry-until-success lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryMetrics {
    /// Attempts used (≥ 1); the final one succeeded.
    pub attempts: u64,
    /// Total own steps across all attempts.
    pub steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_are_plain_data() {
        let a = AttemptMetrics { won: true, steps: 10, helped: 2, delay_overrun: false };
        let b = a;
        assert_eq!(a, b);
        let r = RetryMetrics { attempts: 3, steps: 50 };
        assert_eq!(r.attempts, 3);
    }
}
