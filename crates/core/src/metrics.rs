//! Per-attempt and per-operation metrics reported by the lock algorithm.
//!
//! False-sharing audit (DESIGN.md §1.3): these structs are **returned by
//! value** from each attempt and consumed on the calling process's stack —
//! they are never stored in cross-process arrays — so they need no cache
//! alignment. The shared aggregation points that *do* see concurrent
//! writes are the harness `Outcomes` heap region (line-strided per
//! process) and the real driver's result slots (`CachePadded`); `GiveUp`
//! tallies are folded single-threaded after the run.

use crate::abort::{AbortReason, GiveUp};

/// Outcome and cost of one tryLock attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptMetrics {
    /// Whether the attempt acquired all its locks (and its thunk ran).
    pub won: bool,
    /// Own steps consumed by the attempt, start to finish.
    pub steps: u64,
    /// Descriptors helped during the pre-insert helping phase.
    pub helped: u64,
    /// True if the attempt's real work exceeded the `T0` delay target
    /// before the reveal step (the configured `c0` is too small for the
    /// workload; fairness guarantees are then void).
    pub delay_overrun: bool,
    /// Set when the attempt was abandoned mid-flight at a helping-safe
    /// poll point (deadline expiry or a mid-attempt stop). An aborted
    /// attempt reports `won: false` unless it was [`rescued`].
    ///
    /// [`rescued`]: AttemptMetrics::rescued
    pub aborted: Option<AbortReason>,
    /// The abort raced a competitor's helping and lost: the abandoned
    /// descriptor had already been decided *won* (and its thunk completed)
    /// by the time the owner tried to eliminate it. The attempt then counts
    /// as a win (`won: true`). The rate of rescues among abandoned attempts
    /// is the "abandoned-attempt helping rate" of experiment E16.
    pub rescued: bool,
    /// The win was granted by a combining lock holder (`CombineMode`,
    /// E17): a winner holding a superset of this attempt's locks claimed
    /// the descriptor (`active → combined`) and executed its thunk inside
    /// the holder's batch. Always a non-aborted win — an abort racing a
    /// combining grant reports [`rescued`] instead, so `combined` and
    /// `rescued` are disjoint by construction.
    ///
    /// [`rescued`]: AttemptMetrics::rescued
    pub combined: bool,
    /// For a combining winner: how many pending competitor thunks it
    /// executed in its batch before releasing (0 when combining is off or
    /// nothing compatible was pending).
    pub combined_peers: u64,
}

/// Outcome and cost of a retry-until-success lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryMetrics {
    /// Attempts used (≥ 1 unless the loop gave up before the first one);
    /// when `gave_up` is `None`, the final attempt succeeded.
    pub attempts: u64,
    /// Total own steps consumed by the call (attempts plus inter-attempt
    /// backoff pauses).
    pub steps: u64,
    /// `None` on success; otherwise why the bounded retry loop stopped
    /// without acquiring the locks (the thunk has then never run, unless
    /// the final attempt was rescued — rescues count as success).
    pub gave_up: Option<GiveUp>,
}

impl RetryMetrics {
    /// Whether the acquisition succeeded (the thunk ran exactly once).
    pub fn won(&self) -> bool {
        self.gave_up.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_are_plain_data() {
        let a = AttemptMetrics {
            won: true,
            steps: 10,
            helped: 2,
            delay_overrun: false,
            aborted: None,
            rescued: false,
            combined: false,
            combined_peers: 0,
        };
        let b = a;
        assert_eq!(a, b);
        let r = RetryMetrics { attempts: 3, steps: 50, gave_up: None };
        assert_eq!(r.attempts, 3);
        assert!(r.won());
        let g = RetryMetrics { attempts: 3, steps: 50, gave_up: Some(GiveUp::Deadline) };
        assert!(!g.won());
    }
}
