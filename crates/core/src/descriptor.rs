//! TryLock attempt descriptors (Algorithm 3's `Descriptor` struct).
//!
//! A descriptor is the shared record of one tryLock attempt: the lock set,
//! the thunk frame, a status word (`active`/`won`/`lost`) and a priority
//! word. The priority word doubles as the multi-active-set flag:
//!
//! * `0` — unset (flag false; the paper's `-1`);
//! * `1` — TBD (participation-revealed, priority not yet drawn; only used
//!   by the unknown-bounds variant of §6.2);
//! * `≥ 2` — a revealed priority. Priorities are unique: 41 random bits
//!   concatenated with the attempt's unique 22-bit tag serial, with the
//!   top bit set (paper footnote 3: a poly(P) range avoids collisions; we
//!   make them impossible outright).
//!
//! Layout (heap words, `L` = lock count of this attempt):
//!
//! ```text
//! word 0:            status (0 active, 1 won, 2 lost)
//! word 1:            priority / flag
//! word 2:            lock count | (snapshot addr << 16) for §6.2
//! word 3:            thunk frame address
//! word 4 .. 4+L:     lock ids
//! ```

use wfl_idem::Frame;
use wfl_runtime::{Addr, Ctx, Heap};

/// Status value: still competing.
pub const ST_ACTIVE: u64 = 0;
/// Status value: won all its competitions; thunk may run.
pub const ST_WON: u64 = 1;
/// Status value: eliminated by a higher-priority competitor.
pub const ST_LOST: u64 = 2;
/// Status value: won, and the thunk was claimed for batch execution by a
/// combining lock holder (the `CombineMode` fast path). Semantically a
/// win — every status check that accepts [`ST_WON`] must accept this via
/// [`is_won`] — but recorded separately so the owner's retry loop can
/// report an `OUT_COMBINED` outcome instead of re-running the protocol.
pub const ST_COMBINED: u64 = 3;

/// Whether a status word denotes a win (either the ordinary `decide` CAS
/// or a combining grant). The `active → combined` transition is a one-shot
/// CAS just like `decide`, so it is mutually exclusive with `eliminate`.
#[inline]
pub fn is_won(status: u64) -> bool {
    status == ST_WON || status == ST_COMBINED
}

/// Priority value: unset (multi-active-set flag is false).
pub const PRIO_UNSET: u64 = 0;
/// Priority value: participating, priority to be drawn (§6.2 only).
pub const PRIO_TBD: u64 = 1;

/// Identifier of a lock (an index into a [`crate::space::LockSpace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockId(pub u32);

/// Handle to a descriptor record in the shared heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Desc(pub Addr);

const W_STATUS: u32 = 0;
const W_PRIO: u32 = 1;
const W_META: u32 = 2;
const W_FRAME: u32 = 3;
const W_LOCKS: u32 = 4;

impl Desc {
    /// Words needed for a descriptor with `nlocks` locks.
    pub fn words(nlocks: usize) -> usize {
        W_LOCKS as usize + nlocks
    }

    /// Allocates and initializes a descriptor (counted steps; the record
    /// is private until inserted into the active sets, whose insert CAS is
    /// the Release publication point — so Release init writes suffice).
    pub fn create(ctx: &Ctx<'_>, locks: &[LockId], frame: Frame) -> Desc {
        let base = ctx.alloc(Self::words(locks.len()));
        // status = ACTIVE (0) and priority = UNSET (0) from the allocator.
        ctx.write_rel(base.off(W_META), locks.len() as u64);
        ctx.write_rel(base.off(W_FRAME), frame.0.to_word());
        for (i, l) in locks.iter().enumerate() {
            ctx.write_rel(base.off(W_LOCKS + i as u32), l.0 as u64);
        }
        Desc(base)
    }

    /// The item value stored in active sets (the descriptor's address).
    #[inline]
    pub fn item(self) -> u64 {
        self.0.to_word()
    }

    /// Recovers a descriptor handle from an active-set item.
    #[inline]
    pub fn from_item(item: u64) -> Desc {
        Desc(Addr::from_word(item))
    }

    /// Address of the status word.
    #[inline]
    pub fn status_addr(self) -> Addr {
        self.0.off(W_STATUS)
    }

    /// Address of the priority word.
    #[inline]
    pub fn prio_addr(self) -> Addr {
        self.0.off(W_PRIO)
    }

    /// Reads the status word (one step; Acquire under the tiered
    /// ordering — a `WON` observation must also see the frame).
    #[inline]
    pub fn status(self, ctx: &Ctx<'_>) -> u64 {
        ctx.read_acq(self.status_addr())
    }

    /// Reads the priority word (one step; Acquire — a revealed priority
    /// must also make the descriptor body and §6.2 snapshot visible).
    #[inline]
    pub fn priority(self, ctx: &Ctx<'_>) -> u64 {
        ctx.read_acq(self.prio_addr())
    }

    /// Number of locks in the attempt's lock set (one step).
    pub fn nlocks(self, ctx: &Ctx<'_>) -> usize {
        (ctx.read_acq(self.0.off(W_META)) & 0xffff) as usize
    }

    /// The `i`-th lock id (one step).
    pub fn lock(self, ctx: &Ctx<'_>, i: usize) -> LockId {
        LockId(ctx.read_acq(self.0.off(W_LOCKS + i as u32)) as u32)
    }

    /// The thunk frame (one step).
    pub fn frame(self, ctx: &Ctx<'_>) -> Frame {
        Frame(Addr::from_word(ctx.read_acq(self.0.off(W_FRAME))))
    }

    /// Publishes the §6.2 frozen-snapshot address (stored alongside the
    /// lock count; the snapshot is written before the priority reveal —
    /// the reveal's Release write is what makes it visible to helpers that
    /// see a revealed priority).
    pub fn set_snapshot(self, ctx: &Ctx<'_>, snap: Addr) {
        let nlocks = self.nlocks(ctx) as u64;
        ctx.write_rel(self.0.off(W_META), nlocks | (snap.to_word() << 16));
    }

    /// Reads the §6.2 frozen-snapshot address (NULL if absent).
    pub fn snapshot(self, ctx: &Ctx<'_>) -> Addr {
        Addr::from_word(ctx.read_acq(self.0.off(W_META)) >> 16)
    }

    /// Uncounted inspection of the status word (harness/tests).
    pub fn peek_status(self, heap: &Heap) -> u64 {
        heap.peek(self.status_addr())
    }
}

/// Builds a unique revealed priority from random bits and the attempt's
/// unique tag base: top bit set (so the value is always `> PRIO_TBD`),
/// then 41 random bits, then the 22-bit tag serial.
#[inline]
pub fn make_priority(random: u64, tag_base: u32) -> u64 {
    (1 << 63) | ((random & ((1 << 41) - 1)) << 22) | (tag_base >> 8) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_idem::TagSource;

    #[test]
    fn priorities_are_unique_even_with_equal_randomness() {
        let mut a = TagSource::new(0);
        let mut b = TagSource::new(1);
        let pa = make_priority(0xdead_beef, a.next_base());
        let pb = make_priority(0xdead_beef, b.next_base());
        assert_ne!(pa, pb, "tag serial must break ties");
        assert!(pa > PRIO_TBD && pb > PRIO_TBD);
    }

    #[test]
    fn priority_is_dominated_by_random_bits() {
        let mut t = TagSource::new(0);
        let base = t.next_base();
        let lo = make_priority(1, base);
        let hi = make_priority(2, base);
        assert!(hi > lo);
    }

    #[test]
    fn words_layout() {
        assert_eq!(Desc::words(0), 4);
        assert_eq!(Desc::words(3), 7);
    }
}
