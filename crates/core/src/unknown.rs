//! The unknown-bounds variant (§6.2): wait-free locks without knowing `κ`,
//! `L` or `T`.
//!
//! Differences from the known-bounds algorithm, following the paper's
//! sketch (the full pseudocode is only in the arXiv full version; the
//! reconstruction choices are documented in DESIGN.md §1.5):
//!
//! * Active sets are sized at the process count `P` instead of `κ` (the
//!   caller does this when creating the [`crate::space::LockSpace`]).
//! * The reveal step splits in two. The **participation reveal** writes
//!   the TBD marker after the multiInsert; the **priority reveal** happens
//!   only after the attempt has (a) queried all its locks' active sets and
//!   (b) frozen those memberships into a heap snapshot published through
//!   the descriptor. After the priority is revealed the active sets are
//!   never queried again on behalf of this attempt — `run` uses the frozen
//!   snapshot — so the adversary learns the priority only after it can no
//!   longer shape the attempt's competitor set.
//! * Fixed delays are replaced by the **doubling trick**: before each
//!   reveal (and at the end of the attempt) the process stalls until its
//!   own-step count since the attempt start reaches the next power of two,
//!   so the adversary can steer the reveal time among only `log(κLT)`
//!   values — the source of the `log` factor in Theorem 6.10.
//! * A competitor whose priority is still TBD at comparison time cannot be
//!   compared; the attempt conservatively self-eliminates (wait-free, and
//!   mutual exclusion is preserved; fairness cost measured in E6).

use crate::descriptor::{make_priority, Desc, PRIO_TBD, PRIO_UNSET, ST_WON};
use crate::metrics::AttemptMetrics;
use crate::space::LockSpace;
use crate::trylock::{run_desc, validate, TryLockRequest};
use wfl_activeset::{get_members_by, multi_insert, multi_remove, ActiveSet, Flag};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_runtime::Ctx;

/// Configuration of the unknown-bounds algorithm: only the ablation
/// switches remain — there are no bounds to configure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownConfig {
    /// Doubling delays enabled (disable only for ablations).
    pub delays: bool,
    /// Pre-insert helping phase enabled (disable only for ablations).
    pub helping: bool,
    /// Upper bound on locks per attempt accepted by validation (a sanity
    /// limit, not an algorithm parameter; defaults to the lock count).
    pub l_limit: usize,
}

impl UnknownConfig {
    /// Default configuration.
    pub fn new() -> UnknownConfig {
        UnknownConfig { delays: true, helping: true, l_limit: usize::MAX }
    }
}

impl Default for UnknownConfig {
    fn default() -> Self {
        UnknownConfig::new()
    }
}

/// Flag strategy for §6.2: raising the flag writes the TBD marker (the
/// participation reveal), with the doubling delay folded in.
struct TbdFlag {
    start: u64,
    delays: bool,
}

impl Flag for TbdFlag {
    fn clear(&self, ctx: &Ctx<'_>, item: u64) {
        ctx.write(Desc::from_item(item).prio_addr(), PRIO_UNSET);
    }

    fn set(&self, ctx: &Ctx<'_>, item: u64) {
        if self.delays {
            stall_to_pow2(ctx, self.start);
        }
        ctx.write(Desc::from_item(item).prio_addr(), PRIO_TBD);
    }

    fn get(&self, ctx: &Ctx<'_>, item: u64) -> bool {
        Desc::from_item(item).priority(ctx) != PRIO_UNSET
    }
}

/// Stalls until own steps since `start` reach the next power of two.
fn stall_to_pow2(ctx: &Ctx<'_>, start: u64) {
    let elapsed = (ctx.steps() - start).max(1);
    ctx.stall_until_steps(start + elapsed.next_power_of_two());
}

/// Executes one tryLock attempt without knowing `κ`, `L` or `T`
/// (Theorem 6.10). Semantics match [`crate::trylock::try_locks`]; the
/// success probability carries an extra `1/log(κLT)` factor.
///
/// # Panics
/// Panics on invalid requests (unknown/duplicate/empty lock sets).
pub fn try_locks_unknown(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &UnknownConfig,
    tags: &mut TagSource,
    req: TryLockRequest<'_>,
) -> AttemptMetrics {
    validate(space, registry, cfg.l_limit.min(space.len()), usize::MAX, &req);
    let start = ctx.steps();
    let tag_base = tags.next_base();

    let frame = Frame::create(ctx, registry, req.thunk, tag_base, req.args);
    let p = Desc::create(ctx, req.locks, frame);

    // Helping phase: run every already-revealed competitor to completion.
    let mut helped = 0u64;
    if cfg.helping {
        let mut members = Vec::new();
        for &l in req.locks {
            crate::trylock::revealed_members(ctx, space.set(l), &mut members);
            for &m in &members {
                run_desc(ctx, space, registry, Desc::from_item(m));
                helped += 1;
            }
        }
    }

    // multiInsert; the flag raise is the PARTICIPATION reveal (TBD).
    let sets: Vec<ActiveSet> = req.locks.iter().map(|&l| *space.set(l)).collect();
    let flag = TbdFlag { start, delays: cfg.delays };
    let slots = multi_insert(ctx, &flag, p.item(), &sets);

    // Freeze the competitor sets: query every lock once (including TBD
    // participants) and publish the snapshot through the descriptor.
    let mut frozen: Vec<Vec<u64>> = Vec::with_capacity(sets.len());
    let mut members = Vec::new();
    for set in &sets {
        get_members_by(
            ctx,
            |ctx, item| Desc::from_item(item).priority(ctx) != PRIO_UNSET,
            set,
            &mut members,
        );
        frozen.push(members.clone());
    }
    let snap_words: usize = frozen.iter().map(|f| 1 + f.len()).sum();
    let snap = ctx.alloc(snap_words.max(1));
    let mut off = 0u32;
    for f in &frozen {
        ctx.write(crate::trylock::snap_word(snap, off), f.len() as u64);
        for (k, &m) in f.iter().enumerate() {
            ctx.write(crate::trylock::snap_word(snap, off + 1 + k as u32), m);
        }
        off += 1 + f.len() as u32;
    }
    p.set_snapshot(ctx, snap);

    // PRIORITY reveal, behind a second doubling delay.
    if cfg.delays {
        stall_to_pow2(ctx, start);
    }
    let r = ctx.rand_u64();
    ctx.write(p.prio_addr(), make_priority(r, tag_base));

    // Compete over the frozen snapshot.
    run_desc(ctx, space, registry, p);

    // Clean up; pad the attempt end to a power-of-two length.
    multi_remove(ctx, &flag, p.item(), &sets, &slots);
    if cfg.delays {
        stall_to_pow2(ctx, start);
    }

    AttemptMetrics {
        won: p.status(ctx) == ST_WON,
        steps: ctx.steps() - start,
        helped,
        delay_overrun: false,
    }
}
