//! The unknown-bounds variant (§6.2): wait-free locks without knowing `κ`,
//! `L` or `T`.
//!
//! Differences from the known-bounds algorithm, following the paper's
//! sketch (the full pseudocode is only in the arXiv full version; the
//! reconstruction choices are documented in DESIGN.md §1.6):
//!
//! * Active sets are sized at the process count `P` instead of `κ` (the
//!   caller does this when creating the [`crate::space::LockSpace`]).
//! * The reveal step splits in two. The **participation reveal** writes
//!   the TBD marker after the multiInsert; the **priority reveal** happens
//!   only after the attempt has (a) queried all its locks' active sets and
//!   (b) frozen those memberships into a heap snapshot published through
//!   the descriptor. After the priority is revealed the active sets are
//!   never queried again on behalf of this attempt — `run` uses the frozen
//!   snapshot — so the adversary learns the priority only after it can no
//!   longer shape the attempt's competitor set.
//! * Fixed delays are replaced by the **doubling trick**: before each
//!   reveal (and at the end of the attempt) the process stalls until its
//!   own-step count since the attempt start reaches the next power of two,
//!   so the adversary can steer the reveal time among only `log(κLT)`
//!   values — the source of the `log` factor in Theorem 6.10.
//! * A competitor whose priority is still TBD at comparison time cannot be
//!   compared; the attempt conservatively self-eliminates (wait-free, and
//!   mutual exclusion is preserved; fairness cost measured in E6).

use crate::abort::{poll_abort, AbortReason};
use crate::descriptor::{is_won, make_priority, Desc, PRIO_TBD, PRIO_UNSET, ST_ACTIVE, ST_LOST};
use crate::metrics::AttemptMetrics;
use crate::scratch::Scratch;
use crate::space::LockSpace;
use crate::trylock::{abort_unrevealed, celebrate_if_won, obs, run_desc, validate, TryLockRequest};
use wfl_activeset::{get_members_by, multi_insert_into, multi_remove, Flag};
use wfl_obs::{AttemptOutcomeBits, EventKind};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_runtime::Ctx;

/// Configuration of the unknown-bounds algorithm: only the ablation
/// switches remain — there are no bounds to configure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownConfig {
    /// Doubling delays enabled (disable only for ablations).
    pub delays: bool,
    /// Pre-insert helping phase enabled (disable only for ablations).
    pub helping: bool,
    /// Upper bound on locks per attempt accepted by validation (a sanity
    /// limit, not an algorithm parameter; defaults to the lock count).
    pub l_limit: usize,
}

impl UnknownConfig {
    /// Default configuration.
    pub fn new() -> UnknownConfig {
        UnknownConfig { delays: true, helping: true, l_limit: usize::MAX }
    }
}

impl Default for UnknownConfig {
    fn default() -> Self {
        UnknownConfig::new()
    }
}

/// Flag strategy for §6.2: raising the flag writes the TBD marker (the
/// participation reveal), with the doubling delay folded in.
struct TbdFlag {
    start: u64,
    delays: bool,
}

impl Flag for TbdFlag {
    fn clear(&self, ctx: &Ctx<'_>, item: u64) {
        ctx.write_rel(Desc::from_item(item).prio_addr(), PRIO_UNSET);
    }

    fn set(&self, ctx: &Ctx<'_>, item: u64) {
        if self.delays {
            stall_to_pow2(ctx, self.start);
        }
        // Participation reveal: Release, so an Acquire reader of the TBD
        // marker sees the descriptor body.
        ctx.write_rel(Desc::from_item(item).prio_addr(), PRIO_TBD);
        // As in the known-bounds reveal: an SC fence between each
        // attempt's participation reveal and its freeze scan guarantees
        // that of two concurrent attempts at least one freezes the other
        // into its snapshot (store-buffer litmus, DESIGN.md §2.2).
        ctx.publication_fence();
    }

    fn get(&self, ctx: &Ctx<'_>, item: u64) -> bool {
        Desc::from_item(item).priority(ctx) != PRIO_UNSET
    }
}

/// Stalls until own steps since `start` reach the next power of two.
fn stall_to_pow2(ctx: &Ctx<'_>, start: u64) {
    let elapsed = (ctx.steps() - start).max(1);
    ctx.stall_until_steps(start + elapsed.next_power_of_two());
}

/// Executes one tryLock attempt without knowing `κ`, `L` or `T`
/// (Theorem 6.10). Semantics match [`crate::trylock::try_locks`]; the
/// success probability carries an extra `1/log(κLT)` factor.
///
/// # Panics
/// Panics on invalid requests (unknown/duplicate/empty lock sets).
pub fn try_locks_unknown(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &UnknownConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
) -> AttemptMetrics {
    validate(space, registry, cfg.l_limit.min(space.len()), usize::MAX, &req);
    let start = ctx.steps();
    let deadline = scratch.deadline;
    let tag_base = tags.next_base();

    let frame = Frame::create(ctx, registry, req.thunk, tag_base, req.args);
    let p = Desc::create(ctx, req.locks, frame);
    obs(ctx, EventKind::AttemptStart, req.locks.len() as u64);
    if let Some(cell) = scratch.probe {
        // Fairness probe (see `try_locks`): expose the in-flight descriptor
        // to the adaptive adversary for the whole attempt.
        ctx.write_rel(cell, p.item());
    }

    // Helping phase: run every already-revealed competitor to completion.
    let mut helped = 0u64;
    let mut aborted: Option<AbortReason> = None;
    if cfg.helping {
        let Scratch { helping, members, .. } = scratch;
        'help: for &l in req.locks {
            crate::trylock::revealed_members(ctx, space.set(l), helping);
            for &m in helping.iter() {
                // Abort poll (uncounted) between helps; the descriptor is
                // still private here (see `try_locks`).
                if let Some(r) = poll_abort(ctx, deadline) {
                    aborted = Some(r);
                    break 'help;
                }
                run_desc(ctx, space, registry, Desc::from_item(m), members);
                helped += 1;
            }
        }
    }

    // Pre-insert abort poll: nothing has been revealed yet.
    if aborted.is_none() {
        aborted = poll_abort(ctx, deadline);
    }
    if let Some(r) = aborted {
        return abort_unrevealed(ctx, scratch, p, r, start, helped);
    }
    obs(ctx, EventKind::HelpDone, helped);

    // multiInsert; the flag raise is the PARTICIPATION reveal (TBD).
    scratch.sets.clear();
    scratch.sets.extend(req.locks.iter().map(|&l| *space.set(l)));
    let flag = TbdFlag { start, delays: cfg.delays };
    multi_insert_into(ctx, &flag, p.item(), &scratch.sets, &mut scratch.slots);

    // Post-participation abort poll (the first doubling stall just ran).
    // The descriptor is public but still TBD: no helper ever runs a TBD
    // descriptor (`run_desc` is only invoked on revealed priorities) and a
    // competitor comparing against a TBD member self-eliminates rather
    // than deciding it, so `decide(p)` cannot race us — the eliminate
    // settles the status and removal is safe. Skipping the freeze also
    // skips its snapshot allocation.
    if let Some(r) = poll_abort(ctx, deadline) {
        ctx.cas_bool_sync(p.status_addr(), ST_ACTIVE, ST_LOST);
        multi_remove(ctx, &flag, p.item(), &scratch.sets, &scratch.slots);
        if let Some(cell) = scratch.probe {
            ctx.write_rel(cell, 0);
        }
        obs(ctx, EventKind::Abort, r.index() as u64);
        obs(ctx, EventKind::AttemptEnd, AttemptOutcomeBits::pack(false, true, false, false, 0));
        return AttemptMetrics {
            won: false,
            steps: ctx.steps() - start,
            helped,
            delay_overrun: false,
            aborted: Some(r),
            rescued: false,
            combined: false,
            combined_peers: 0,
        };
    }

    // Freeze the competitor sets: query every lock once (including TBD
    // participants) and publish the snapshot through the descriptor. The
    // per-lock lists are staged flat in the scratch (same counted reads
    // and writes as the old Vec<Vec<_>> staging, no allocation).
    scratch.frozen_items.clear();
    scratch.frozen_lens.clear();
    for set in &scratch.sets {
        get_members_by(
            ctx,
            |ctx, item| Desc::from_item(item).priority(ctx) != PRIO_UNSET,
            set,
            &mut scratch.members,
        );
        scratch.frozen_lens.push(scratch.members.len() as u32);
        scratch.frozen_items.extend_from_slice(&scratch.members);
    }
    let snap_words: usize = scratch.frozen_lens.len() + scratch.frozen_items.len();
    let snap = ctx.alloc(snap_words.max(1));
    let mut off = 0u32;
    let mut item_idx = 0usize;
    for &len in &scratch.frozen_lens {
        ctx.write_rel(crate::trylock::snap_word(snap, off), len as u64);
        for k in 0..len {
            ctx.write_rel(
                crate::trylock::snap_word(snap, off + 1 + k),
                scratch.frozen_items[item_idx],
            );
            item_idx += 1;
        }
        off += 1 + len;
    }
    p.set_snapshot(ctx, snap);

    // PRIORITY reveal, behind a second doubling delay. Release: helpers
    // that acquire the revealed priority must also see the snapshot.
    if cfg.delays {
        stall_to_pow2(ctx, start);
    }
    let r = ctx.rand_u64();
    ctx.write_rel(p.prio_addr(), make_priority(r, tag_base));
    ctx.publication_fence();
    obs(ctx, EventKind::RevealDone, 0);

    // Post-priority-reveal abort poll: from here competitors can help the
    // descriptor to completion, so abandonment is the eliminate-vs-decide
    // race of the known-bounds algorithm (see `try_locks`): if a helper's
    // `decide` landed first the attempt won anyway — celebrate and report
    // the rescue.
    if let Some(reason) = poll_abort(ctx, deadline) {
        let eliminated = ctx.cas_bool_sync(p.status_addr(), ST_ACTIVE, ST_LOST);
        let rescued = !eliminated && is_won(p.status(ctx));
        if rescued {
            celebrate_if_won(ctx, registry, p);
        }
        multi_remove(ctx, &flag, p.item(), &scratch.sets, &scratch.slots);
        if let Some(cell) = scratch.probe {
            ctx.write_rel(cell, 0);
        }
        obs(ctx, EventKind::Abort, reason.index() as u64 | 1 << 8);
        if rescued {
            obs(ctx, EventKind::Rescue, 0);
        }
        obs(
            ctx,
            EventKind::AttemptEnd,
            AttemptOutcomeBits::pack(rescued, true, rescued, false, 0),
        );
        return AttemptMetrics {
            won: rescued,
            steps: ctx.steps() - start,
            helped,
            delay_overrun: false,
            aborted: Some(reason),
            rescued,
            combined: false,
            combined_peers: 0,
        };
    }

    // Compete over the frozen snapshot.
    run_desc(ctx, space, registry, p, &mut scratch.members);
    if wfl_obs::rec::is_enabled() {
        // Uncounted peek for the event argument (see `try_locks`).
        obs(ctx, EventKind::SettleDone, is_won(ctx.heap().peek(p.status_addr())) as u64);
    }

    // Clean up; pad the attempt end to a power-of-two length (the probe
    // clear stays inside the padding so probing never changes it).
    multi_remove(ctx, &flag, p.item(), &scratch.sets, &scratch.slots);
    if let Some(cell) = scratch.probe {
        ctx.write_rel(cell, 0);
    }
    if cfg.delays {
        stall_to_pow2(ctx, start);
    }

    let won = is_won(p.status(ctx));
    obs(ctx, EventKind::AttemptEnd, AttemptOutcomeBits::pack(won, false, false, false, 0));
    AttemptMetrics {
        won,
        steps: ctx.steps() - start,
        helped,
        delay_overrun: false,
        aborted: None,
        rescued: false,
        combined: false,
        combined_peers: 0,
    }
}
