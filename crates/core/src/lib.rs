//! The fast and fair randomized wait-free lock algorithm of Ben-David &
//! Blelloch, *"Fast and Fair Randomized Wait-Free Locks"*, PODC 2022
//! (arXiv:2108.04520).
//!
//! A [`trylock::try_locks`] attempt specifies a set of locks and a
//! critical-section thunk. Against an **oblivious scheduler adversary**
//! and an **adaptive player adversary**:
//!
//! * every attempt finishes within `O(κ²L²T)` of the caller's own steps
//!   (Theorem 6.1) — wait-free, even if every other process has crashed;
//! * every attempt succeeds (acquires all locks, runs the thunk) with
//!   probability at least `1/C_p ≥ 1/(κL)` (Theorem 6.9), independently
//!   across attempts — fair;
//! * retrying until success gives a wait-free lock with expected
//!   `O(κ³L³T)` steps ([`retry::lock_and_run`]);
//! * an [`unknown::try_locks_unknown`] variant needs no knowledge of the
//!   bounds, at a `log(κLT)` factor in the success probability
//!   (Theorem 6.10).
//!
//! Here `κ` bounds the point contention on any lock, `L` the locks per
//! attempt, and `T` the shared operations per critical section.
//!
//! # Example: two increments under one lock
//!
//! ```
//! use wfl_runtime::{Heap, sim::SimBuilder, schedule::SeededRandom, Ctx};
//! use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk};
//! use wfl_core::{LockConfig, LockSpace, LockId, Scratch, TryLockRequest, lock_and_run};
//!
//! struct Incr;
//! impl Thunk for Incr {
//!     fn run(&self, run: &mut IdemRun<'_, '_>) {
//!         let c = wfl_runtime::Addr::from_word(run.arg(0));
//!         let v = run.read(c);
//!         run.write(c, v + 1);
//!     }
//!     fn max_ops(&self) -> usize { 2 }
//! }
//!
//! let mut registry = Registry::new();
//! let incr = registry.register(Incr);
//! let heap = Heap::new(1 << 20);
//! let space = LockSpace::create_root(&heap, 1, 2); // one lock, κ = 2
//! let counter = heap.alloc_root(1);
//! let cfg = LockConfig::new(2, 1, 2);
//!
//! let (space, registry) = (&space, &registry);
//! let report = SimBuilder::new(&heap, 2)
//!     .schedule(SeededRandom::new(2, 42))
//!     .max_steps(1_000_000)
//!     .spawn_all(|pid| move |ctx: &Ctx| {
//!         let mut tags = TagSource::new(pid);
//!         let mut scratch = Scratch::new();
//!         let req = TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &[counter.to_word()] };
//!         lock_and_run(ctx, space, registry, &cfg, &mut tags, &mut scratch, req);
//!     })
//!     .run();
//! report.assert_clean();
//! assert_eq!(cell::value(heap.peek(counter)), 2); // both critical sections ran exactly once
//! ```

pub mod abort;
pub mod config;
pub mod descriptor;
pub mod metrics;
pub mod retry;
pub mod scratch;
pub mod space;
pub mod trylock;
pub mod unknown;

pub use abort::{AbortReason, Backoff, Deadline, GiveUp};
pub use config::LockConfig;
pub use wfl_runtime::trace;
pub use descriptor::{is_won, Desc, LockId, ST_ACTIVE, ST_COMBINED, ST_LOST, ST_WON};
pub use metrics::{AttemptMetrics, RetryMetrics};
pub use retry::{lock_and_run, lock_and_run_limited, lock_and_run_until};
pub use scratch::Scratch;
pub use space::{LockSpace, SpaceLayout};
pub use trylock::{try_locks, TryLockRequest};
pub use unknown::{try_locks_unknown, UnknownConfig};
