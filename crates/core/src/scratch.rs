//! Reusable per-process scratch buffers for the tryLock hot path.
//!
//! Every tryLock attempt needs a handful of transient lists: member scans
//! of active sets, the per-set handles and slot indices of a multiInsert,
//! the §6.2 frozen-snapshot staging area, and the baselines' sorted lock
//! order. Allocating fresh `Vec`s for these on every attempt put several
//! `malloc`/`free` pairs on the hot path; threading one [`Scratch`] per
//! process through [`crate::try_locks`] (and the baselines' `LockAlgo`
//! drivers) makes the steady-state attempt path allocation-free — each
//! buffer is cleared and reused, retaining its high-water-mark capacity.
//!
//! A `Scratch` is plain process-local memory: it never holds borrowed heap
//! state across attempts, and reusing it does not change the counted step
//! sequence of an attempt (buffer reuse is invisible to the step
//! accounting), so simulator determinism is unaffected.

use crate::abort::Deadline;
use wfl_activeset::ActiveSet;
use wfl_runtime::Addr;

/// Per-process scratch space for lock-attempt hot paths. Create one per
/// process (next to its `TagSource`) and pass it to every attempt.
///
/// Cache-line aligned (false-sharing audit, DESIGN.md §1.3): harness
/// drivers hold these in per-process arrays, and the Vec headers
/// (ptr/len/cap) are rewritten on every attempt — without the alignment,
/// two processes' headers could share a line and every `clear()` would
/// cross-invalidate. The buffers' payloads are separately heap-allocated
/// and already private.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct Scratch {
    /// Member scan used inside `run`/helping of the descriptor being run.
    pub members: Vec<u64>,
    /// Member list of the pre-insert helping phase (distinct from
    /// `members` because helping iterates it while running descriptors).
    pub helping: Vec<u64>,
    /// Active-set handles of the current attempt's lock set.
    pub sets: Vec<ActiveSet>,
    /// Slot indices returned by the multiInsert.
    pub slots: Vec<usize>,
    /// §6.2 freeze staging: concatenated per-lock member lists.
    pub frozen_items: Vec<u64>,
    /// §6.2 freeze staging: per-lock member counts.
    pub frozen_lens: Vec<u32>,
    /// Baselines: lock ids sorted for ordered acquisition.
    pub order: Vec<u32>,
    /// Fairness-subsystem attempt probe: when set, [`crate::try_locks`]
    /// (and the §6.2 variant) publishes the in-flight descriptor's address
    /// into this heap cell right after creating it and clears the cell when
    /// the attempt ends. An adaptive adversary — the simulator's
    /// player-adversary controller or a real observer thread — reads the
    /// cell to learn exactly when the process is inside an attempt and (via
    /// the descriptor's priority word) whether it is still in its
    /// pre-reveal window. `None` (the default) costs nothing.
    pub probe: Option<Addr>,
    /// Own-step deadline armed for the next attempt(s). Defaults to
    /// [`Deadline::NEVER`], which disables the per-attempt abort polls
    /// entirely. Like `probe`, this rides the scratch so that arming a
    /// deadline changes no function signatures on the hot path;
    /// [`crate::lock_and_run_until`] sets and restores it around its
    /// attempts, and batch drivers may arm it per round.
    pub deadline: Deadline,
}

impl Scratch {
    /// An empty scratch. Buffers grow to the workload's high-water mark on
    /// first use and are then reused allocation-free.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// A scratch pre-sized for attempts over at most `l_max` locks with at
    /// most `kappa` concurrent members per lock (avoids even the first
    /// attempt's growth reallocations).
    pub fn with_bounds(kappa: usize, l_max: usize) -> Scratch {
        Scratch {
            members: Vec::with_capacity(kappa + 1),
            helping: Vec::with_capacity(kappa + 1),
            sets: Vec::with_capacity(l_max),
            slots: Vec::with_capacity(l_max),
            frozen_items: Vec::with_capacity(l_max * (kappa + 1)),
            frozen_lens: Vec::with_capacity(l_max),
            order: Vec::with_capacity(l_max),
            probe: None,
            deadline: Deadline::NEVER,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_bounds_presizes() {
        let s = Scratch::with_bounds(4, 2);
        assert!(s.members.capacity() >= 5);
        assert!(s.sets.capacity() >= 2);
        assert!(s.frozen_items.capacity() >= 10);
        assert!(s.order.capacity() >= 2);
    }

    #[test]
    fn default_is_empty() {
        let s = Scratch::new();
        assert!(s.members.is_empty() && s.slots.is_empty() && s.order.is_empty());
        assert!(s.deadline.is_never(), "fresh scratch must not arm a deadline");
    }
}
