//! Lock algorithm configuration: the paper's bounds `κ`, `L`, `T` and the
//! delay constants.

/// Configuration of the known-bounds lock algorithm (§6).
///
/// The delays derive from the bounds exactly as in the paper:
/// `T0 = c0·κ²·L²·T` own steps from attempt start to the reveal step, and
/// `T1 = c1·κ·L·T` own steps from the reveal step to the end of the
/// attempt. `c0`/`c1` must be large enough that the actual work fits under
/// the delay targets (a violation is reported in the attempt metrics as a
/// *delay overrun* rather than silently breaking fairness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockConfig {
    /// `κ`: maximum point contention on any single lock.
    pub kappa: usize,
    /// `L`: maximum number of locks per tryLock attempt.
    pub l_max: usize,
    /// `T`: maximum number of shared operations in a critical section.
    pub t_max: usize,
    /// Constant for the pre-reveal delay `T0`.
    pub c0: u64,
    /// Constant for the post-reveal delay `T1`.
    pub c1: u64,
    /// Paper delays enabled (disable only for the E11 ablation).
    pub delays: bool,
    /// Pre-insert helping phase enabled (disable only for the E12
    /// ablation).
    pub helping: bool,
    /// Combining fast path enabled (`CombineMode`, E17): a winner scans
    /// its locks' active sets for still-active competitors whose lock
    /// sets are covered by its own and executes their thunks in a batch
    /// before releasing. Off by default — combining changes the counted
    /// step sequence, so recorded sim schedules replay identically unless
    /// the schedule family opts in.
    pub combine: bool,
}

impl LockConfig {
    /// A configuration with the default delay constants.
    ///
    /// # Panics
    /// Panics if any bound is zero.
    pub fn new(kappa: usize, l_max: usize, t_max: usize) -> LockConfig {
        assert!(kappa > 0 && l_max > 0 && t_max > 0, "bounds must be positive");
        LockConfig {
            kappa,
            l_max,
            t_max,
            c0: 40,
            c1: 40,
            delays: true,
            helping: true,
            combine: false,
        }
    }

    /// The fixed number of own steps from attempt start to the reveal step
    /// (`T0 = c0·κ²·L²·T`).
    pub fn t0(&self) -> u64 {
        self.c0 * (self.kappa * self.kappa * self.l_max * self.l_max * self.t_max) as u64
    }

    /// The fixed number of own steps from the reveal step to the end of
    /// the attempt (`T1 = c1·κ·L·T`).
    pub fn t1(&self) -> u64 {
        self.c1 * (self.kappa * self.l_max * self.t_max) as u64
    }

    /// The paper's per-attempt step bound `O(κ²L²T)` with these constants:
    /// every attempt takes exactly `T0 + T1` own steps when delays are
    /// enabled (and at most that plus a constant for the final reads).
    pub fn step_bound(&self) -> u64 {
        self.t0() + self.t1()
    }

    /// Disables the fixed delays (E11 ablation). The algorithm remains
    /// safe (mutual exclusion holds) but the fairness bound is forfeited.
    pub fn without_delays(mut self) -> LockConfig {
        self.delays = false;
        self
    }

    /// Enables the combining fast path (E17): winners batch-execute
    /// compatible pending thunks before releasing. Safe for mutual
    /// exclusion and exactly-once (the grant is a one-shot status CAS,
    /// arbitrating against `eliminate`/`decide` like any helper), but it
    /// perturbs step counts, so only opt in where determinism against
    /// previously recorded schedules is not required.
    pub fn with_combining(mut self) -> LockConfig {
        self.combine = true;
        self
    }

    /// Disables the pre-insert helping phase (E12 ablation). Mutual
    /// exclusion still holds but both the fairness argument and the
    /// bounded-steps-under-stall property are forfeited.
    pub fn without_helping(mut self) -> LockConfig {
        self.helping = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_formulas_match_paper() {
        let cfg = LockConfig::new(3, 2, 5);
        assert_eq!(cfg.t0(), cfg.c0 * 9 * 4 * 5);
        assert_eq!(cfg.t1(), cfg.c1 * 3 * 2 * 5);
        assert_eq!(cfg.step_bound(), cfg.t0() + cfg.t1());
    }

    #[test]
    fn ablation_builders() {
        let cfg = LockConfig::new(2, 2, 2);
        assert!(cfg.delays && cfg.helping && !cfg.combine);
        assert!(!cfg.without_delays().delays);
        assert!(!cfg.without_helping().helping);
        assert!(cfg.with_combining().combine);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        LockConfig::new(0, 1, 1);
    }
}
