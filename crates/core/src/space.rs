//! The lock space: the system of locks, each represented by an active set.

use crate::descriptor::LockId;
use wfl_activeset::ActiveSet;
use wfl_runtime::Heap;

/// A fixed collection of locks created at setup time. Each lock is an
/// active set (§6: "each lock is represented by an active set object that
/// is part of a single multi active set object").
#[derive(Debug)]
pub struct LockSpace {
    locks: Vec<ActiveSet>,
}

impl LockSpace {
    /// Creates `nlocks` locks whose active sets each hold up to `capacity`
    /// concurrent attempts: the contention bound `κ` for the known-bounds
    /// algorithm (§6), or the process count `P` for the unknown-bounds
    /// variant (§6.2).
    ///
    /// # Panics
    /// Panics if `nlocks` or `capacity` is zero.
    pub fn create_root(heap: &Heap, nlocks: usize, capacity: usize) -> LockSpace {
        assert!(nlocks > 0, "need at least one lock");
        let locks = (0..nlocks).map(|_| ActiveSet::create_root(heap, capacity)).collect();
        LockSpace { locks }
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the space has no locks (never true for a created space).
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// The active set representing `lock`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn set(&self, lock: LockId) -> &ActiveSet {
        &self.locks[lock.0 as usize]
    }

    /// All lock ids, for workload generators.
    pub fn ids(&self) -> impl Iterator<Item = LockId> + '_ {
        (0..self.locks.len() as u32).map(LockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_index() {
        let heap = Heap::new(1 << 12);
        let space = LockSpace::create_root(&heap, 3, 4);
        assert_eq!(space.len(), 3);
        assert!(!space.is_empty());
        assert_eq!(space.ids().count(), 3);
        assert_eq!(space.set(LockId(2)).capacity(), 4);
    }
}
