//! The lock space: the system of locks, each represented by an active set.

use crate::descriptor::LockId;
use wfl_activeset::{create_sharded_roots, ActiveSet, ShardMap};
use wfl_runtime::{Heap, Placement};

/// Memory-layout policy of a [`LockSpace`]: how its active sets are placed
/// relative to cache lines ([`Placement`]) and how many lock-neighborhood
/// shards partition them (see `wfl_activeset::shard`).
///
/// Layout is pure address arithmetic — it never changes any operation's
/// counted step sequence — so a sim replay is identical under every
/// `SpaceLayout`; the E13 harness A/Bs layouts on the real backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceLayout {
    /// Slot placement inside each active set.
    pub placement: Placement,
    /// Shard count: `0` = auto (one shard per ~4 locks), `1` = unified
    /// (the historical single neighborhood), `n > 1` = exactly `n`
    /// neighborhoods (clamped to the lock count).
    pub shards: usize,
}

impl SpaceLayout {
    /// The historical layout: back-to-back sets in one neighborhood. Kept
    /// for the E13 A/B baseline and for address-pinned tests.
    pub fn packed_unified() -> SpaceLayout {
        SpaceLayout { placement: Placement::Packed, shards: 1 }
    }

    /// The shard count this layout resolves to for `nlocks` locks.
    pub fn shards_for(&self, nlocks: usize) -> usize {
        match self.shards {
            0 => nlocks.div_ceil(4),
            n => n.min(nlocks),
        }
    }

    /// Label for tables and JSON: `"packed+unified"`, `"padded+sharded"`,
    /// and the two off-diagonal combinations.
    pub fn label(&self) -> String {
        let shard = if self.shards == 1 { "unified" } else { "sharded" };
        format!("{}+{}", self.placement.label(), shard)
    }
}

impl Default for SpaceLayout {
    /// Padded slots, auto-sharded neighborhoods — the layout that kills
    /// cross-lock cache traffic. The measured default for all harness runs.
    fn default() -> Self {
        SpaceLayout { placement: Placement::Padded, shards: 0 }
    }
}

/// A fixed collection of locks created at setup time. Each lock is an
/// active set (§6: "each lock is represented by an active set object that
/// is part of a single multi active set object").
#[derive(Debug)]
pub struct LockSpace {
    locks: Vec<ActiveSet>,
    shards: ShardMap,
}

impl LockSpace {
    /// Creates `nlocks` locks whose active sets each hold up to `capacity`
    /// concurrent attempts: the contention bound `κ` for the known-bounds
    /// algorithm (§6), or the process count `P` for the unknown-bounds
    /// variant (§6.2). Historical packed+unified layout; the harness
    /// default goes through [`LockSpace::create_root_with`].
    ///
    /// # Panics
    /// Panics if `nlocks` or `capacity` is zero.
    pub fn create_root(heap: &Heap, nlocks: usize, capacity: usize) -> LockSpace {
        Self::create_root_with(heap, nlocks, capacity, SpaceLayout::packed_unified())
    }

    /// Creates the lock space under an explicit [`SpaceLayout`].
    ///
    /// # Panics
    /// Panics if `nlocks` or `capacity` is zero.
    pub fn create_root_with(
        heap: &Heap,
        nlocks: usize,
        capacity: usize,
        layout: SpaceLayout,
    ) -> LockSpace {
        assert!(nlocks > 0, "need at least one lock");
        let (shards, locks) =
            create_sharded_roots(heap, nlocks, capacity, layout.placement, layout.shards_for(nlocks));
        LockSpace { locks, shards }
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the space has no locks (never true for a created space).
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// The active set representing `lock`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn set(&self, lock: LockId) -> &ActiveSet {
        &self.locks[lock.0 as usize]
    }

    /// The shard geometry the space was created with (tests, telemetry).
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// All lock ids, for workload generators.
    pub fn ids(&self) -> impl Iterator<Item = LockId> + '_ {
        (0..self.locks.len() as u32).map(LockId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_index() {
        let heap = Heap::new(1 << 12);
        let space = LockSpace::create_root(&heap, 3, 4);
        assert_eq!(space.len(), 3);
        assert!(!space.is_empty());
        assert_eq!(space.ids().count(), 3);
        assert_eq!(space.set(LockId(2)).capacity(), 4);
        // The compat constructor keeps the historical single neighborhood.
        assert_eq!(space.shards().nshards(), 1);
    }

    #[test]
    fn default_layout_is_padded_and_sharded() {
        let layout = SpaceLayout::default();
        assert_eq!(layout.placement, Placement::Padded);
        assert_eq!(layout.shards_for(16), 4, "auto = one shard per ~4 locks");
        assert_eq!(layout.label(), "padded+sharded");
        assert_eq!(SpaceLayout::packed_unified().label(), "packed+unified");

        let heap = Heap::new(1 << 14);
        let space = LockSpace::create_root_with(&heap, 16, 2, layout);
        assert_eq!(space.len(), 16);
        assert_eq!(space.shards().nshards(), 4);
        for id in 0..16 {
            assert_eq!(space.shards().shard_of(id), id / 4);
        }
    }

    #[test]
    fn explicit_shard_counts_are_clamped_to_locks() {
        let heap = Heap::new(1 << 14);
        let layout = SpaceLayout { placement: Placement::Packed, shards: 64 };
        let space = LockSpace::create_root_with(&heap, 5, 2, layout);
        assert_eq!(space.shards().nshards(), 5, "one shard per lock at most");
    }
}
