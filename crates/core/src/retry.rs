//! Retry-until-success: the wait-free lock built from independent tryLock
//! attempts.
//!
//! Theorem 6.9 gives each attempt success probability ≥ `1/C_p ≥ 1/(κL)`,
//! independent across attempts; Theorem 6.1 bounds each attempt at
//! `O(κ²L²T)` steps. Retrying until success therefore succeeds within
//! `O(κ³L³T)` expected steps — the paper's headline corollary — and the
//! attempt count is stochastically dominated by a geometric distribution
//! with mean ≤ `κL` (validated in experiment E5).

use crate::config::LockConfig;
use crate::metrics::RetryMetrics;
use crate::scratch::Scratch;
use crate::space::LockSpace;
use crate::trylock::{try_locks, TryLockRequest};
use wfl_idem::{Registry, TagSource};
use wfl_runtime::Ctx;

/// Acquires the locks and runs the thunk, retrying failed attempts until
/// one succeeds. Wait-free with expected `O(κ³L³T)` steps.
///
/// Note: each retry is a fresh attempt with a fresh descriptor and a fresh
/// random priority (attempts are independent by Theorem 6.9).
#[allow(clippy::too_many_arguments)]
pub fn lock_and_run(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
) -> RetryMetrics {
    let mut attempts = 0;
    let mut steps = 0;
    loop {
        let m = try_locks(ctx, space, registry, cfg, tags, scratch, req);
        attempts += 1;
        steps += m.steps;
        if m.won {
            return RetryMetrics { attempts, steps };
        }
    }
}

/// Like [`lock_and_run`], but gives up after `max_attempts`, as soon as the
/// driver's cooperative stop flag is raised between attempts (so a timed
/// real-threads run, or the simulator's drain phase, is never wedged behind
/// a long retry loop), when the caller's tag source is exhausted (each
/// retry draws one attempt tag; giving up cleanly lets a multi-epoch
/// driver close the batch and rewind tags at the next quiescent reset
/// instead of panicking mid-retry), **or** when the heap signals
/// allocation pressure ([`Ctx::heap_low`]: an earlier allocation had to
/// dip into the emergency reserve — exactly like tag exhaustion, the
/// epoch boundary rewinds the lanes and clears the condition). Returns
/// `None` on give-up; the thunk has then never run.
#[allow(clippy::too_many_arguments)]
pub fn lock_and_run_limited(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
    max_attempts: u64,
) -> Option<RetryMetrics> {
    let mut steps = 0;
    for attempt in 1..=max_attempts {
        if tags.remaining() == 0 || ctx.heap_low() {
            return None;
        }
        let m = try_locks(ctx, space, registry, cfg, tags, scratch, req);
        steps += m.steps;
        if m.won {
            return Some(RetryMetrics { attempts: attempt, steps });
        }
        if ctx.stop_requested() {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::LockId;
    use wfl_idem::{cell, IdemRun, Registry, Thunk};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;
    use wfl_runtime::{Addr, Heap};

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn retry_always_succeeds_and_counts_attempts() {
        for seed in 0..6 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 22);
            let space = LockSpace::create_root(&heap, 1, 3);
            let counter = heap.alloc_root(1);
            let attempts_out = heap.alloc_root(3);
            let cfg = LockConfig::new(3, 1, 2).without_delays();
            let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
            let report = SimBuilder::new(&heap, 3)
                .schedule(SeededRandom::new(3, seed))
                .max_steps(200_000_000)
                .spawn_all(|pid| {
                    move |ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = Scratch::new();
                        let mut total = 0u64;
                        for _ in 0..4 {
                            let req = TryLockRequest {
                                locks: &[LockId(0)],
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            let m = lock_and_run(
                                ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                            );
                            assert!(m.attempts >= 1);
                            assert!(m.steps >= 1);
                            total += m.attempts;
                        }
                        ctx.write(attempts_out.off(pid as u32), total);
                    }
                })
                .run();
            report.assert_clean();
            // Wait-free retry: all 12 acquisitions happened, exactly once.
            assert_eq!(cell::value(heap.peek(counter)), 12, "seed {seed}");
            for pid in 0..3 {
                assert!(heap.peek(attempts_out.off(pid)) >= 4, "seed {seed}");
            }
        }
    }

    #[test]
    fn limited_retry_gives_up_cleanly() {
        // One process retries against a permanently-held... nothing can be
        // permanently held in a wait-free lock, so instead verify the
        // success path (limit not reached) and that `None` is only
        // possible when attempts genuinely failed.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 1);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(1, 1, 2).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                let m = lock_and_run_limited(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req, 3,
                )
                .expect("uncontended attempt must succeed within the limit");
                assert_eq!(m.attempts, 1, "solo attempts succeed first try");
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 1);
    }

    #[test]
    fn limited_retry_gives_up_cleanly_on_tag_exhaustion() {
        // Drain the tag source to its last serial before calling: the retry
        // wrapper must return `None` (attempt never started) rather than
        // panicking inside `try_locks` — this is what lets an epoch batch
        // end at the tag boundary and rewind at the next quiescent reset.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 1);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(1, 1, 2).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                while tags.remaining() > 0 {
                    tags.next_base();
                }
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                let m = lock_and_run_limited(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req, 10,
                );
                assert!(m.is_none(), "exhausted tags must give up, not panic");
                // After a rewind (as the epoch boundary performs) the same
                // request succeeds.
                tags.reset();
                let m = lock_and_run_limited(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req, 10,
                );
                assert!(m.is_some(), "rewound tags must work again");
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 1);
    }

    #[test]
    fn limited_retry_honors_the_stop_flag_in_timed_real_runs() {
        // Two "victim" threads retry with an absurd attempt budget; their
        // *only* exit is `lock_and_run_limited` returning `None`, which can
        // only happen via the stop check (the budget is effectively
        // infinite). A "contender" thread keeps attempting until both
        // victims have exited, guaranteeing the victims keep seeing failed
        // attempts after the timer fires. Without the stop check the
        // victims never exit and attempt until they exhaust the per-process
        // tag space — a loud failure instead of a hang. Delays with a large
        // `c0` pace every attempt to tens of microseconds, so the tag space
        // (4096 attempts/process/heap lifetime) comfortably outlasts the
        // timer on the fixed path.
        use wfl_runtime::real::{run_threads_with, RealConfig};

        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 23);
        let space = LockSpace::create_root(&heap, 1, 3);
        let counter = heap.alloc_root(1);
        let victims_done = heap.alloc_root(1);
        let wins_out = heap.alloc_root(3);
        let mut cfg = LockConfig::new(3, 1, 2);
        cfg.c0 = 2000;
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = run_threads_with(
            &heap,
            3,
            5,
            Some(std::time::Duration::from_millis(5)),
            RealConfig::fast(),
            |pid| {
                move |ctx: &wfl_runtime::Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    let mut wins = 0u64;
                    let args = [counter.to_word()];
                    if pid == 0 {
                        // Contender: sustains failure pressure until both
                        // victims have observed the stop flag and left.
                        // The poll rides the tiered Acquire read (this spin
                        // is a real-mode hot loop; see DESIGN.md §2.2's
                        // ordering audit) — the victims' AcqRel increment
                        // publishes their exit. If a loaded box stretches
                        // the window past the contender's tag space, it
                        // falls back to local spinning instead of panicking
                        // mid-draw (the victims then exit through their own
                        // tag/stop give-up paths).
                        while ctx.read_acq(victims_done) < 2 {
                            if tags.remaining() == 0 {
                                ctx.local_step();
                                continue;
                            }
                            let req =
                                TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &args };
                            let m = try_locks(
                                ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                            );
                            wins += m.won as u64;
                        }
                    } else {
                        loop {
                            let req =
                                TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &args };
                            match lock_and_run_limited(
                                ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                                u64::MAX,
                            ) {
                                Some(_) => wins += 1,
                                None => break, // stop flag observed mid-retry
                            }
                        }
                        loop {
                            let seen = ctx.read_acq(victims_done);
                            if ctx.cas_val_sync(victims_done, seen, seen + 1) == seen {
                                break;
                            }
                        }
                    }
                    ctx.heap().poke(wins_out.off(pid as u32), wins);
                }
            },
        );
        report.assert_clean();
        let wins: u64 = (0..3).map(|i| heap.peek(wins_out.off(i as u32))).sum();
        assert!(wins > 0);
        assert_eq!(cell::value(heap.peek(counter)) as u64, wins);
    }
}
