//! Retry-until-success: the wait-free lock built from independent tryLock
//! attempts.
//!
//! Theorem 6.9 gives each attempt success probability ≥ `1/C_p ≥ 1/(κL)`,
//! independent across attempts; Theorem 6.1 bounds each attempt at
//! `O(κ²L²T)` steps. Retrying until success therefore succeeds within
//! `O(κ³L³T)` expected steps — the paper's headline corollary — and the
//! attempt count is stochastically dominated by a geometric distribution
//! with mean ≤ `κL` (validated in experiment E5).

use crate::abort::{Backoff, Deadline, GiveUp};
use crate::config::LockConfig;
use crate::metrics::RetryMetrics;
use crate::scratch::Scratch;
use crate::space::LockSpace;
use crate::trylock::{try_locks, TryLockRequest};
use wfl_idem::{Registry, TagSource};
use wfl_runtime::Ctx;

/// Acquires the locks and runs the thunk, retrying failed attempts until
/// one succeeds. Wait-free with expected `O(κ³L³T)` steps.
///
/// Note: each retry is a fresh attempt with a fresh descriptor and a fresh
/// random priority (attempts are independent by Theorem 6.9).
///
/// Under `CombineMode` ([`LockConfig::with_combining`]) an attempt may be
/// claimed and executed by a combining lock holder; the attempt then
/// reports a settled win (`AttemptMetrics::combined`) and the loop exits
/// exactly as for an ordinary win — the retry layer never re-runs the
/// acquisition protocol for a thunk that already executed in a batch.
///
/// `lock_and_run` is unconditional by contract — it disarms any deadline
/// left in the scratch for the duration of the loop (retry-until-success
/// and a per-attempt abort are contradictory; use
/// [`lock_and_run_until`] for abortable acquisition).
#[allow(clippy::too_many_arguments)]
pub fn lock_and_run(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
) -> RetryMetrics {
    let armed = std::mem::replace(&mut scratch.deadline, Deadline::NEVER);
    let m = lock_and_run_inner(ctx, space, registry, cfg, tags, scratch, req);
    scratch.deadline = armed;
    m
}

#[allow(clippy::too_many_arguments)]
fn lock_and_run_inner(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
) -> RetryMetrics {
    let mut attempts = 0;
    let mut steps = 0;
    loop {
        let m = try_locks(ctx, space, registry, cfg, tags, scratch, req);
        attempts += 1;
        steps += m.steps;
        if m.won {
            return RetryMetrics { attempts, steps, gave_up: None };
        }
    }
}

/// Like [`lock_and_run`], but gives up after `max_attempts`, as soon as the
/// driver's cooperative stop flag is raised between attempts (so a timed
/// real-threads run, or the simulator's drain phase, is never wedged behind
/// a long retry loop), when the caller's tag source is exhausted (each
/// retry draws one attempt tag; giving up cleanly lets a multi-epoch
/// driver close the batch and rewind tags at the next quiescent reset
/// instead of panicking mid-retry), **or** when the heap signals
/// allocation pressure ([`Ctx::heap_low`]: an earlier allocation had to
/// dip into the emergency reserve — exactly like tag exhaustion, the
/// epoch boundary rewinds the lanes and clears the condition).
///
/// The returned metrics carry the give-up reason: `gave_up` is `None` iff
/// the locks were acquired and the thunk ran; otherwise it says *why* the
/// loop stopped and the thunk has never run.
#[allow(clippy::too_many_arguments)]
pub fn lock_and_run_limited(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
    max_attempts: u64,
) -> RetryMetrics {
    lock_and_run_until(
        ctx,
        space,
        registry,
        cfg,
        tags,
        scratch,
        req,
        max_attempts,
        Deadline::NEVER,
        Backoff::NONE,
    )
}

/// Abortable acquisition with a hard exit: retries tryLock attempts until
/// one succeeds, the `deadline` (in the caller's own steps) expires — also
/// *mid-attempt*, at the helping-safe poll points of
/// [`try_locks`] — `max_attempts` runs out, or one of
/// [`lock_and_run_limited`]'s give-up conditions fires. Between failed
/// attempts the loop pauses for `backoff` local steps (bounded exponential,
/// truncated so a pause never outlives the deadline).
///
/// An abandoned attempt leaves its descriptor fully helpable: if a
/// competitor completes it first, the acquisition **succeeded** (the thunk
/// ran; `gave_up` is `None`) — abort never blocks others, and never
/// forfeits a critical section that was already granted.
#[allow(clippy::too_many_arguments)]
pub fn lock_and_run_until(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
    max_attempts: u64,
    deadline: Deadline,
    backoff: Backoff,
) -> RetryMetrics {
    let t_start = ctx.steps();
    let armed = std::mem::replace(&mut scratch.deadline, deadline);
    let mut attempts = 0;
    let gave_up = 'retry: loop {
        if attempts >= max_attempts {
            break Some(GiveUp::Attempts);
        }
        if tags.remaining() == 0 {
            break Some(GiveUp::Tags);
        }
        if ctx.heap_low() {
            break Some(GiveUp::HeapLow);
        }
        if deadline.expired(ctx) {
            break Some(GiveUp::Deadline);
        }
        let m = try_locks(ctx, space, registry, cfg, tags, scratch, req);
        attempts += 1;
        if m.won {
            break None;
        }
        if let Some(r) = m.aborted {
            break Some(r.into());
        }
        if ctx.stop_requested() {
            break Some(GiveUp::Stop);
        }
        // Bounded exponential backoff before the next attempt, in own
        // local steps (deterministic in sim). Never sleep past the
        // deadline: cap the pause at the remaining budget.
        let pause = backoff.pause_after(attempts);
        if pause > 0 {
            if deadline.remaining(ctx) == 0 {
                break 'retry Some(GiveUp::Deadline);
            }
            ctx.stall_until_steps(ctx.steps() + pause.min(deadline.remaining(ctx)));
        }
    };
    scratch.deadline = armed;
    if let Some(g) = gave_up {
        crate::trylock::obs(ctx, wfl_obs::EventKind::GiveUp, g.index() as u64);
    }
    RetryMetrics { attempts, steps: ctx.steps() - t_start, gave_up }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::LockId;
    use wfl_idem::{cell, IdemRun, Registry, Thunk};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;
    use wfl_runtime::{Addr, Heap};

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn retry_always_succeeds_and_counts_attempts() {
        for seed in 0..6 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 22);
            let space = LockSpace::create_root(&heap, 1, 3);
            let counter = heap.alloc_root(1);
            let attempts_out = heap.alloc_root(3);
            let cfg = LockConfig::new(3, 1, 2).without_delays();
            let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
            let report = SimBuilder::new(&heap, 3)
                .schedule(SeededRandom::new(3, seed))
                .max_steps(200_000_000)
                .spawn_all(|pid| {
                    move |ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = Scratch::new();
                        let mut total = 0u64;
                        for _ in 0..4 {
                            let req = TryLockRequest {
                                locks: &[LockId(0)],
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            let m = lock_and_run(
                                ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                            );
                            assert!(m.attempts >= 1);
                            assert!(m.steps >= 1);
                            total += m.attempts;
                        }
                        ctx.write(attempts_out.off(pid as u32), total);
                    }
                })
                .run();
            report.assert_clean();
            // Wait-free retry: all 12 acquisitions happened, exactly once.
            assert_eq!(cell::value(heap.peek(counter)), 12, "seed {seed}");
            for pid in 0..3 {
                assert!(heap.peek(attempts_out.off(pid)) >= 4, "seed {seed}");
            }
        }
    }

    #[test]
    fn limited_retry_gives_up_cleanly() {
        // One process retries against a permanently-held... nothing can be
        // permanently held in a wait-free lock, so instead verify the
        // success path (limit not reached) and that `None` is only
        // possible when attempts genuinely failed.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 1);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(1, 1, 2).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                let m = lock_and_run_limited(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req, 3,
                );
                assert!(m.won(), "uncontended attempt must succeed within the limit");
                assert_eq!(m.attempts, 1, "solo attempts succeed first try");
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 1);
    }

    #[test]
    fn limited_retry_gives_up_cleanly_on_tag_exhaustion() {
        // Drain the tag source to its last serial before calling: the retry
        // wrapper must return `None` (attempt never started) rather than
        // panicking inside `try_locks` — this is what lets an epoch batch
        // end at the tag boundary and rewind at the next quiescent reset.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 1);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(1, 1, 2).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                while tags.remaining() > 0 {
                    tags.next_base();
                }
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                let m = lock_and_run_limited(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req, 10,
                );
                assert_eq!(
                    m.gave_up,
                    Some(GiveUp::Tags),
                    "exhausted tags must give up (with the reason), not panic"
                );
                assert_eq!(m.attempts, 0, "no attempt ever started");
                // After a rewind (as the epoch boundary performs) the same
                // request succeeds.
                tags.reset();
                let m = lock_and_run_limited(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req, 10,
                );
                assert!(m.won(), "rewound tags must work again");
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 1);
    }

    #[test]
    fn deadline_in_the_past_gives_up_before_drawing_a_tag() {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 1);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(1, 1, 2).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                let before = tags.remaining();
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                ctx.stall_until_steps(100);
                let m = lock_and_run_until(
                    ctx,
                    space_ref,
                    reg_ref,
                    cfg_ref,
                    &mut tags,
                    &mut scratch,
                    req,
                    u64::MAX,
                    Deadline::at_steps(50),
                    Backoff::NONE,
                );
                assert_eq!(m.gave_up, Some(GiveUp::Deadline));
                assert_eq!(m.attempts, 0, "expired deadline: no attempt starts");
                assert_eq!(tags.remaining(), before, "no tag was burned");
                assert!(scratch.deadline.is_never(), "deadline disarmed on exit");
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 0, "the thunk never ran");
    }

    #[test]
    fn deadline_aborts_mid_attempt_and_leaves_state_reusable() {
        // Arm a deadline that expires *inside* the attempt (the T0 reveal
        // stall alone is longer than the budget): the attempt must abort at
        // a poll point, report the reason, and leave the lock space fully
        // usable — the same process immediately acquires the same lock with
        // no deadline.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 2);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(2, 1, 2); // delays ON: attempts are long
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .max_steps(10_000_000)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                let budget = cfg_ref.t0() / 2;
                let m = lock_and_run_until(
                    ctx,
                    space_ref,
                    reg_ref,
                    cfg_ref,
                    &mut tags,
                    &mut scratch,
                    req,
                    u64::MAX,
                    Deadline::after(ctx, budget),
                    Backoff::exponential(4, 64),
                );
                assert_eq!(m.gave_up, Some(GiveUp::Deadline));
                assert_eq!(m.attempts, 1, "the single attempt aborted mid-flight");
                assert!(
                    m.steps < cfg_ref.step_bound(),
                    "abort returned early, not after the full padded attempt"
                );
                // The abandoned descriptor must not wedge the lock: a
                // fresh unbounded acquisition of the same lock succeeds.
                let m2 = lock_and_run(
                    ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                );
                assert!(m2.won());
            })
            .run();
        report.assert_clean();
        assert_eq!(
            cell::value(heap.peek(counter)),
            1,
            "aborted attempt's thunk never ran; the follow-up ran exactly once"
        );
    }

    #[test]
    fn generous_deadline_succeeds_with_backoff_armed() {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let space = LockSpace::create_root(&heap, 1, 1);
        let counter = heap.alloc_root(1);
        let cfg = LockConfig::new(1, 1, 2).without_delays();
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = SimBuilder::new(&heap, 1)
            .spawn(move |ctx: &wfl_runtime::Ctx| {
                let mut tags = TagSource::new(0);
                let mut scratch = Scratch::new();
                let req = TryLockRequest {
                    locks: &[LockId(0)],
                    thunk: incr,
                    args: &[counter.to_word()],
                };
                let m = lock_and_run_until(
                    ctx,
                    space_ref,
                    reg_ref,
                    cfg_ref,
                    &mut tags,
                    &mut scratch,
                    req,
                    8,
                    Deadline::after(ctx, 1_000_000),
                    Backoff::exponential(8, 128),
                );
                assert!(m.won());
                assert_eq!(m.gave_up, None);
            })
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(counter)), 1);
    }

    #[test]
    fn limited_retry_honors_the_stop_flag_in_timed_real_runs() {
        // Two "victim" threads retry with an absurd attempt budget; their
        // *only* exit is `lock_and_run_limited` giving up, which can
        // only happen via the stop check (the budget is effectively
        // infinite). A "contender" thread keeps attempting until both
        // victims have exited, guaranteeing the victims keep seeing failed
        // attempts after the timer fires. Without the stop check the
        // victims never exit and attempt until they exhaust the per-process
        // tag space — a loud failure instead of a hang. Delays with a large
        // `c0` pace every attempt to tens of microseconds, so the tag space
        // (4096 attempts/process/heap lifetime) comfortably outlasts the
        // timer on the fixed path.
        use wfl_runtime::real::{run_threads_with, RealConfig};

        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 23);
        let space = LockSpace::create_root(&heap, 1, 3);
        let counter = heap.alloc_root(1);
        let victims_done = heap.alloc_root(1);
        let wins_out = heap.alloc_root(3);
        let mut cfg = LockConfig::new(3, 1, 2);
        cfg.c0 = 2000;
        let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
        let report = run_threads_with(
            &heap,
            3,
            5,
            Some(std::time::Duration::from_millis(5)),
            RealConfig::fast(),
            |pid| {
                move |ctx: &wfl_runtime::Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = Scratch::new();
                    let mut wins = 0u64;
                    let args = [counter.to_word()];
                    if pid == 0 {
                        // Contender: sustains failure pressure until both
                        // victims have observed the stop flag and left.
                        // The poll rides the tiered Acquire read (this spin
                        // is a real-mode hot loop; see DESIGN.md §2.2's
                        // ordering audit) — the victims' AcqRel increment
                        // publishes their exit. If a loaded box stretches
                        // the window past the contender's tag space, it
                        // falls back to local spinning instead of panicking
                        // mid-draw (the victims then exit through their own
                        // tag/stop give-up paths).
                        while ctx.read_acq(victims_done) < 2 {
                            if tags.remaining() == 0 {
                                ctx.local_step();
                                continue;
                            }
                            let req =
                                TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &args };
                            let m = try_locks(
                                ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                            );
                            wins += m.won as u64;
                        }
                    } else {
                        loop {
                            let req =
                                TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &args };
                            let m = lock_and_run_limited(
                                ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req,
                                u64::MAX,
                            );
                            if m.won() {
                                wins += 1;
                            } else {
                                break; // stop flag observed mid-retry
                            }
                        }
                        loop {
                            let seen = ctx.read_acq(victims_done);
                            if ctx.cas_val_sync(victims_done, seen, seen + 1) == seen {
                                break;
                            }
                        }
                    }
                    ctx.heap().poke(wins_out.off(pid as u32), wins);
                }
            },
        );
        report.assert_clean();
        let wins: u64 = (0..3).map(|i| heap.peek(wins_out.off(i as u32))).sum();
        assert!(wins > 0);
        assert_eq!(cell::value(heap.peek(counter)) as u64, wins);
    }
}
