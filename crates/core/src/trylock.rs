//! Algorithm 3: the fast and fair randomized wait-free tryLock.
//!
//! A tryLock attempt, in the order of the paper's pseudocode:
//!
//! 1. create a descriptor (status `active`, priority unset);
//! 2. **helping phase**: for each of its locks, read the (flag-filtered)
//!    active set and `run` every revealed competitor to completion — any
//!    attempt whose priority the player adversary could have seen before
//!    starting us is forced to finish without competing against us;
//! 3. **multiInsert** the descriptor into its locks' active sets; raising
//!    the flag is the *reveal step*: stall until exactly `T0` own steps
//!    have elapsed since the attempt started, then write a fresh uniformly
//!    random priority — so the reveal time is a fixed function of the
//!    start time, denying the adversary any priority-dependent timing;
//! 4. `run(p)`: compete — compare priorities against every active
//!    competitor on every lock, eliminating the lower side; then `decide`
//!    (CAS `active → won`) and celebrate;
//! 5. **multiRemove**, and stall until `T0 + T1` own steps so the end of
//!    the attempt is also a fixed function of its start.
//!
//! `run` is also the *helping function*: any process can run it on any
//! revealed descriptor, which is what makes the lock wait-free — a stalled
//! winner's critical section is completed by its competitors
//! (idempotently, via `wfl-idem`).

use crate::abort::{poll_abort, AbortReason};
use crate::config::LockConfig;
use crate::descriptor::{
    is_won, make_priority, Desc, LockId, PRIO_TBD, PRIO_UNSET, ST_ACTIVE, ST_COMBINED, ST_LOST,
    ST_WON,
};
use crate::metrics::AttemptMetrics;
use crate::scratch::Scratch;
use crate::space::LockSpace;
use std::cell::Cell;
use wfl_activeset::{get_members_by, multi_insert_into, multi_remove, ActiveSet, Flag};
use wfl_idem::{Frame, Registry, TagSource, ThunkId};
use wfl_obs::{AttemptOutcomeBits, EventKind};
use wfl_runtime::{Addr, Ctx};

/// Emits one flight-recorder event from an algorithm hook point. Every
/// argument read (`pid`, `now`, `steps`) is an uncounted `Cell` load, so
/// recording never perturbs the schedule or the step accounting; when
/// the recorder is disabled this is one relaxed load and a branch.
#[inline]
pub(crate) fn obs(ctx: &Ctx<'_>, kind: EventKind, arg: u64) {
    wfl_obs::rec::record(ctx.pid(), kind, ctx.now(), ctx.steps(), arg);
}

/// A tryLock request: the lock set and the critical section to run on
/// success.
#[derive(Debug, Clone, Copy)]
pub struct TryLockRequest<'a> {
    /// Locks to acquire (distinct, at most the configured `L`).
    pub locks: &'a [LockId],
    /// The registered critical-section thunk.
    pub thunk: ThunkId,
    /// Arguments for the thunk frame.
    pub args: &'a [u64],
}

/// The multi-active-set flag strategy of the known-bounds algorithm: the
/// priority word is the flag; raising it is the reveal step, with the
/// paper's `T0` delay folded in.
struct RevealFlag {
    /// Stall target (absolute own steps) before revealing; `None` when
    /// delays are ablated.
    reveal_at: Option<u64>,
    /// Unique serial for tie-free priorities.
    tag_base: u32,
    /// Set if real work overran the delay target (fairness void).
    overrun: Cell<bool>,
}

impl Flag for RevealFlag {
    fn clear(&self, ctx: &Ctx<'_>, item: u64) {
        ctx.write_rel(Desc::from_item(item).prio_addr(), PRIO_UNSET);
    }

    fn set(&self, ctx: &Ctx<'_>, item: u64) {
        if let Some(target) = self.reveal_at {
            if ctx.steps() > target {
                self.overrun.set(true);
            }
            ctx.stall_until_steps(target);
        }
        let r = ctx.rand_u64();
        // The reveal is the publication point of the attempt: Release, so
        // an Acquire reader of the priority sees the whole descriptor.
        ctx.write_rel(Desc::from_item(item).prio_addr(), make_priority(r, self.tag_base));
        // Mutual exclusion needs more than publication: of two concurrent
        // attempts, at least one must SEE the other's reveal in its
        // post-reveal scan. A Release store + Acquire load alone permits
        // the store-buffer outcome where both miss; the SC fence between
        // each attempt's reveal and its scan forbids it (DESIGN.md §2.2).
        ctx.publication_fence();
    }

    fn get(&self, ctx: &Ctx<'_>, item: u64) -> bool {
        Desc::from_item(item).priority(ctx) > PRIO_TBD
    }
}

/// Reads the flag-filtered membership of a lock's active set: the
/// descriptors whose priority is revealed.
pub(crate) fn revealed_members(ctx: &Ctx<'_>, set: &ActiveSet, out: &mut Vec<u64>) {
    get_members_by(ctx, |ctx, item| Desc::from_item(item).priority(ctx) > PRIO_TBD, set, out);
}

/// `eliminate(p)`: one-shot transition `active → lost`. Idempotent under
/// arbitrary helper races (monotonic CAS; AcqRel under the tiered
/// ordering).
#[inline]
pub(crate) fn eliminate(ctx: &Ctx<'_>, p: Desc) {
    ctx.cas_bool_sync(p.status_addr(), ST_ACTIVE, ST_LOST);
}

/// `decide(p)`: one-shot transition `active → won`; succeeds iff `p` was
/// never eliminated.
#[inline]
pub(crate) fn decide(ctx: &Ctx<'_>, p: Desc) {
    ctx.cas_bool_sync(p.status_addr(), ST_ACTIVE, ST_WON);
}

/// `celebrateIfWon(p)`: if `p` has won (by `decide` or by a combining
/// grant — [`ST_COMBINED`] is a win), run its thunk (idempotently; any
/// number of helpers may do this concurrently). Treating `COMBINED` as
/// won here is what serializes combined executions: a competitor that
/// sees a claimed member helps its thunk to completion before deciding
/// itself, exactly as for an ordinary winner.
#[inline]
pub(crate) fn celebrate_if_won(ctx: &Ctx<'_>, registry: &Registry, p: Desc) {
    if is_won(p.status(ctx)) {
        wfl_runtime::trace::emit(|| format!("t={} pid={} celebrate({:?}) begin", ctx.now(), ctx.pid(), p.0));
        p.frame(ctx).help(ctx, registry);
        wfl_runtime::trace::emit(|| format!("t={} pid={} celebrate({:?}) end", ctx.now(), ctx.pid(), p.0));
    }
}

/// The `run` function of Algorithm 3 — both the competition step and the
/// helping function. Compares `p`'s priority with every active competitor
/// on every lock in `p`'s lock set, eliminating the lower side; then
/// decides `p` and celebrates.
///
/// For §6.2 descriptors (those carrying a frozen snapshot), the member
/// lists come from the snapshot instead of querying the active sets, and a
/// competitor whose priority is still TBD causes `p` to self-eliminate
/// (the conservative reconstruction documented in DESIGN.md §1.6).
pub(crate) fn run_desc(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    p: Desc,
    members: &mut Vec<u64>,
) {
    wfl_runtime::trace::emit(|| format!("t={} pid={} run_desc({:?}) begin", ctx.now(), ctx.pid(), p.0));
    let nlocks = p.nlocks(ctx);
    let snap = p.snapshot(ctx);
    let mut snap_off = 0u32;
    for li in 0..nlocks {
        if snap.is_null() {
            let lock = p.lock(ctx, li);
            revealed_members(ctx, space.set(lock), members);
        } else {
            // §6.2: read the frozen per-lock snapshot from the heap.
            members.clear();
            let count = ctx.read_acq(snap.off(snap_off)) as u32;
            for k in 0..count {
                members.push(ctx.read_acq(snap.off(snap_off + 1 + k)));
            }
            snap_off += 1 + count;
        }
        wfl_runtime::trace::emit(|| format!("t={} pid={} run_desc({:?}) lock#{} members={:?} p.status={}", ctx.now(), ctx.pid(), p.0, li, members, ctx.heap().peek(p.status_addr())));
        if p.status(ctx) == ST_ACTIVE {
            for &m in members.iter() {
                let q = Desc::from_item(m);
                if q.status(ctx) == ST_ACTIVE {
                    let pq = q.priority(ctx);
                    let pp = p.priority(ctx);
                    if pq == PRIO_TBD {
                        // §6.2 conservative rule: unknown competitor
                        // priority — p loses the comparison.
                        if q != p {
                            eliminate(ctx, p);
                        }
                    } else if pp > PRIO_TBD && pq > PRIO_TBD {
                        wfl_runtime::trace::emit(|| format!("t={} pid={} compare p={:?}({:x}) q={:?}({:x}) -> eliminate {:?}", ctx.now(), ctx.pid(), p.0, pp, q.0, pq, if pp > pq { q.0 } else { p.0 }));
                        if pp > pq {
                            eliminate(ctx, q);
                        } else if q != p {
                            eliminate(ctx, p);
                        }
                    }
                }
                celebrate_if_won(ctx, registry, q);
            }
        }
    }
    decide(ctx, p);
    wfl_runtime::trace::emit(|| format!("t={} pid={} decide({:?}) -> status={}", ctx.now(), ctx.pid(), p.0, ctx.heap().peek(p.status_addr())));
    celebrate_if_won(ctx, registry, p);
    wfl_runtime::trace::emit(|| format!("t={} pid={} run_desc({:?}) end status={}", ctx.now(), ctx.pid(), p.0, ctx.heap().peek(p.status_addr())));
}

/// Executes one tryLock attempt (the known-bounds algorithm of §6).
///
/// Returns the attempt's outcome and step cost. On success, the thunk has
/// been run (by this process or a helper) before the call returns; on
/// failure, no run of the thunk ever happens (Definition 4.3).
///
/// `scratch` is the caller's per-process [`Scratch`]; reusing it across
/// attempts keeps the hot path allocation-free (reuse never changes the
/// counted step sequence).
///
/// # Panics
/// Panics if the request violates the configuration: more than
/// `cfg.l_max` locks, duplicate locks, an empty lock set, or a thunk
/// declaring more than `cfg.t_max` operations.
pub fn try_locks(
    ctx: &Ctx<'_>,
    space: &LockSpace,
    registry: &Registry,
    cfg: &LockConfig,
    tags: &mut TagSource,
    scratch: &mut Scratch,
    req: TryLockRequest<'_>,
) -> AttemptMetrics {
    validate(space, registry, cfg.l_max, cfg.t_max, &req);
    let start = ctx.steps();
    let deadline = scratch.deadline;
    let tag_base = tags.next_base();

    // Descriptor + thunk frame (private until inserted).
    let frame = Frame::create(ctx, registry, req.thunk, tag_base, req.args);
    let p = Desc::create(ctx, req.locks, frame);
    obs(ctx, EventKind::AttemptStart, req.locks.len() as u64);
    wfl_runtime::trace::emit(|| format!("t={} pid={} start attempt {:?} frame={:?}", ctx.now(), ctx.pid(), p.0, frame.0));
    if let Some(cell) = scratch.probe {
        // Fairness probe: hand the adversary this attempt's descriptor the
        // moment it exists — it can watch the priority word for the
        // pre-reveal window. Strictly more visibility than a real player
        // could extract, which is exactly the regime Theorem 6.9 bounds.
        ctx.write_rel(cell, p.item());
    }

    // Helping phase: clear the field of every already-revealed competitor.
    let mut helped = 0u64;
    let mut aborted: Option<AbortReason> = None;
    if cfg.helping {
        // Split borrow: `helping` holds the member list being iterated
        // while `members` serves as run_desc's own scan buffer.
        let Scratch { helping, members, .. } = scratch;
        'help: for &l in req.locks {
            revealed_members(ctx, space.set(l), helping);
            for &m in helping.iter() {
                // Abort poll (uncounted) between helps: each competitor is
                // helped to completion or not started — never left half
                // run — and our own descriptor is still private.
                if let Some(r) = poll_abort(ctx, deadline) {
                    aborted = Some(r);
                    break 'help;
                }
                run_desc(ctx, space, registry, Desc::from_item(m), members);
                helped += 1;
            }
        }
    }

    // Pre-insert abort poll: the descriptor has never been revealed, so
    // abandoning it here is trivially safe — no competitor has seen it.
    if aborted.is_none() {
        aborted = poll_abort(ctx, deadline);
    }
    if let Some(r) = aborted {
        return abort_unrevealed(ctx, scratch, p, r, start, helped);
    }
    obs(ctx, EventKind::HelpDone, helped);

    // multiInsert; the flag raise is the reveal step with the T0 delay.
    scratch.sets.clear();
    scratch.sets.extend(req.locks.iter().map(|&l| *space.set(l)));
    let flag = RevealFlag {
        reveal_at: cfg.delays.then(|| start + cfg.t0()),
        tag_base,
        overrun: Cell::new(false),
    };
    multi_insert_into(ctx, &flag, p.item(), &scratch.sets, &mut scratch.slots);
    obs(ctx, EventKind::RevealDone, 0);
    wfl_runtime::trace::emit(|| format!("t={} pid={} revealed {:?} prio={:x}", ctx.now(), ctx.pid(), p.0, ctx.heap().peek(p.prio_addr())));

    // Post-reveal abort poll (the `T0` reveal stall just ran, so this is
    // where an expired deadline usually surfaces). The descriptor is now
    // public, so abandoning it must leave it helpable: the abort is an
    // `eliminate` racing the helpers' `decide` — whichever one-shot status
    // transition lands is final and visible to everyone. If a helper
    // already decided the attempt *won*, the abort came too late: the
    // critical section belongs to this attempt, so celebrate it (running
    // the thunk to completion if the helper is still mid-flight) and
    // report the win as a rescue.
    if let Some(r) = poll_abort(ctx, deadline) {
        let eliminated = ctx.cas_bool_sync(p.status_addr(), ST_ACTIVE, ST_LOST);
        // A combining grant that lands before the eliminate is a win the
        // same way a helper's `decide` is: the thunk already belongs to
        // the claimant's batch, so the abort came too late — report the
        // rescue (never `combined`: rescued and combined are disjoint).
        let rescued = !eliminated && is_won(p.status(ctx));
        if rescued {
            celebrate_if_won(ctx, registry, p);
        }
        multi_remove(ctx, &flag, p.item(), &scratch.sets, &scratch.slots);
        if let Some(cell) = scratch.probe {
            ctx.write_rel(cell, 0);
        }
        wfl_runtime::trace::emit(|| format!("t={} pid={} abort({:?}) post-reveal {:?} rescued={}", ctx.now(), ctx.pid(), p.0, r, rescued));
        obs(ctx, EventKind::Abort, r.index() as u64 | 1 << 8);
        if rescued {
            obs(ctx, EventKind::Rescue, 0);
        }
        obs(
            ctx,
            EventKind::AttemptEnd,
            AttemptOutcomeBits::pack(rescued, true, rescued, false, 0),
        );
        return AttemptMetrics {
            won: rescued,
            steps: ctx.steps() - start,
            helped,
            delay_overrun: flag.overrun.get(),
            aborted: Some(r),
            rescued,
            combined: false,
            combined_peers: 0,
        };
    }

    // Compete.
    run_desc(ctx, space, registry, p, &mut scratch.members);
    if wfl_obs::rec::is_enabled() {
        // The status re-read for the event argument is an uncounted peek:
        // the counted re-read below happens identically either way.
        obs(ctx, EventKind::SettleDone, is_won(ctx.heap().peek(p.status_addr())) as u64);
    }

    // Combining fast path (E17, `cfg.combine`): having won by our own
    // `decide` — own thunk complete, descriptor still in every active set
    // — claim competitors that revealed after the competition scan and
    // are still ACTIVE, granting each a win (`active → combined`, a
    // one-shot CAS arbitrating against their eliminate/decide exactly
    // like `decide` does) and running their thunks before releasing.
    //
    // A claimed peer skips its own competition, so every claim must be
    // arbitrated on its behalf. Each *combine round* claims at most ONE
    // peer (full argument in DESIGN.md §2.7):
    //
    // 1. **Settle pass.** Re-read every revealed member of this
    //    attempt's locks (a superset of every claim candidate's locks).
    //    The first still-ACTIVE member whose lock set is covered by ours
    //    becomes the round's *chosen* candidate; every other ACTIVE
    //    member — candidate or not — is eliminated (the fairness cost of
    //    combining; losing is always safe). A member already COMBINED
    //    has a finished claimant (a mid-batch claimant is always visibly
    //    WON on a shared lock, which aborts us next), so its frame is
    //    complete. If the pass finds any **other WON member, combining
    //    is abandoned**: that winner may be mid-frame or mid-batch.
    //    This abort rule is also what arbitrates between two would-be
    //    claimants on overlapping locks — the later one still sees the
    //    earlier one WON in a shared active set.
    //
    // 2. **Claim the chosen peer** (`active → combined`) and run its
    //    thunk. At the claim point every other member is settled, so the
    //    only parties that can still decide are attempts that revealed
    //    after the pass — and the chosen peer revealed *before* it, so
    //    the reveal/scan fence guarantees their post-reveal scan sees
    //    it: ACTIVE (they compete against it — their eliminate beats our
    //    claim, or they lose to it) or COMBINED (they help its frame to
    //    completion before deciding, exactly as for an ordinary winner).
    //    One claim per pass is essential: with two unclaimed candidates
    //    in flight, one could decide against the other claim unseen.
    //
    // Rounds repeat (bounded by κ) while claims land, so one winner can
    // still drain several peers; any failed claim or in-flight winner
    // ends combining for this attempt.
    //
    // Gated on ST_WON, not `is_won`: an attempt that was itself claimed
    // (COMBINED) holds nothing — its thunk ran inside the claimant's
    // batch and the locks may already have new owners — so it must not
    // start a batch of its own.
    let mut combined_peers = 0u64;
    if cfg.combine && p.status(ctx) == ST_WON {
        let Scratch { members, .. } = scratch;
        let covered = |ctx: &Ctx<'_>, q: Desc| {
            let qn = q.nlocks(ctx);
            qn <= req.locks.len() && (0..qn).all(|i| req.locks.contains(&q.lock(ctx, i)))
        };
        'rounds: while combined_peers < cfg.kappa.max(1) as u64 {
            let mut chosen: Option<u64> = None;
            for &l in req.locks {
                revealed_members(ctx, space.set(l), members);
                for &sm in members.iter() {
                    if sm == p.item() || chosen == Some(sm) {
                        continue;
                    }
                    let s = Desc::from_item(sm);
                    loop {
                        match s.status(ctx) {
                            ST_WON => break 'rounds,
                            ST_ACTIVE => {
                                if chosen.is_none() && covered(ctx, s) {
                                    chosen = Some(sm);
                                    break;
                                }
                                if ctx.cas_bool_sync(s.status_addr(), ST_ACTIVE, ST_LOST) {
                                    wfl_runtime::trace::emit(|| format!("t={} pid={} combine({:?}) pass eliminates {:?}", ctx.now(), ctx.pid(), p.0, s.0));
                                    break;
                                }
                                // Lost the race to its decide: re-read.
                            }
                            // LOST is settled; COMBINED is complete (above).
                            _ => break,
                        }
                    }
                }
            }
            let Some(qm) = chosen else { break };
            let q = Desc::from_item(qm);
            // The claim CAS is sync; this fence pairs with competitors'
            // reveal fences for the pass-vs-scan visibility argument.
            ctx.publication_fence();
            if !ctx.cas_bool_sync(q.status_addr(), ST_ACTIVE, ST_COMBINED) {
                break;
            }
            wfl_runtime::trace::emit(|| format!("t={} pid={} combine({:?}) claims {:?}", ctx.now(), ctx.pid(), p.0, q.0));
            obs(ctx, EventKind::CombineClaim, qm);
            celebrate_if_won(ctx, registry, q);
            combined_peers += 1;
        }
    }

    // Clean up, then pad to the fixed attempt length. The probe clears
    // before the padding: the competition is decided, and keeping the clear
    // inside the delay window means probing never alters the fixed
    // `T0 + T1` attempt length.
    multi_remove(ctx, &flag, p.item(), &scratch.sets, &scratch.slots);
    if let Some(cell) = scratch.probe {
        ctx.write_rel(cell, 0);
    }
    if cfg.delays {
        if ctx.steps() > start + cfg.t0() + cfg.t1() {
            flag.overrun.set(true);
        }
        ctx.stall_until_steps(start + cfg.t0() + cfg.t1());
    }

    let status = p.status(ctx);
    obs(
        ctx,
        EventKind::AttemptEnd,
        AttemptOutcomeBits::pack(
            is_won(status),
            false,
            false,
            status == ST_COMBINED,
            combined_peers,
        ),
    );
    AttemptMetrics {
        won: is_won(status),
        steps: ctx.steps() - start,
        helped,
        delay_overrun: flag.overrun.get(),
        aborted: None,
        rescued: false,
        // This attempt's own win was granted by a combining peer (its
        // `decide` lost to a claimant's CAS; the thunk ran in the peer's
        // batch): the retry loop observes a settled win either way.
        combined: status == ST_COMBINED,
        combined_peers,
    }
}

/// Abandons an attempt whose descriptor was never revealed (pre-insert
/// abort): eliminate it so any probe observer sees a settled status, clear
/// the probe, and return without the end-of-attempt padding — an aborted
/// attempt forfeits its fairness guarantees but costs nobody else anything
/// (no competitor ever saw the descriptor).
pub(crate) fn abort_unrevealed(
    ctx: &Ctx<'_>,
    scratch: &mut Scratch,
    p: Desc,
    reason: AbortReason,
    start: u64,
    helped: u64,
) -> AttemptMetrics {
    eliminate(ctx, p);
    if let Some(cell) = scratch.probe {
        ctx.write_rel(cell, 0);
    }
    wfl_runtime::trace::emit(|| format!("t={} pid={} abort({:?}) pre-reveal {:?}", ctx.now(), ctx.pid(), p.0, reason));
    obs(ctx, EventKind::Abort, reason.index() as u64);
    obs(ctx, EventKind::AttemptEnd, AttemptOutcomeBits::pack(false, true, false, false, 0));
    AttemptMetrics {
        won: false,
        steps: ctx.steps() - start,
        helped,
        delay_overrun: false,
        aborted: Some(reason),
        rescued: false,
        combined: false,
        combined_peers: 0,
    }
}

pub(crate) fn validate(
    space: &LockSpace,
    registry: &Registry,
    l_max: usize,
    t_max: usize,
    req: &TryLockRequest<'_>,
) {
    assert!(!req.locks.is_empty(), "a tryLock needs at least one lock");
    assert!(
        req.locks.len() <= l_max,
        "{} locks exceeds the configured L = {}",
        req.locks.len(),
        l_max
    );
    for (i, l) in req.locks.iter().enumerate() {
        assert!((l.0 as usize) < space.len(), "unknown lock id {}", l.0);
        assert!(
            !req.locks[..i].contains(l),
            "duplicate lock id {} in the lock set",
            l.0
        );
    }
    let ops = registry.get(req.thunk).max_ops();
    assert!(ops <= t_max, "thunk declares {ops} ops, exceeding the configured T = {t_max}");
}

/// Uncounted inspection helper for tests: whether a descriptor won
/// (by `decide` or by a combining grant).
pub fn peek_won(heap: &wfl_runtime::Heap, p: Desc) -> bool {
    is_won(p.peek_status(heap))
}

/// Address of a word inside the snapshot region (used by `unknown.rs`).
pub(crate) fn snap_word(snap: Addr, off: u32) -> Addr {
    snap.off(off)
}
