//! Per-attempt aborts: deadlines, abort reasons, and retry backoff.
//!
//! The paper's wait-free guarantee bounds *expected* steps; a caller with a
//! latency SLO needs a hard exit. A [`Deadline`] is an absolute bound on the
//! process's **own step count** (the same clock the paper's delays are
//! measured in), threaded into an attempt through
//! [`crate::Scratch::deadline`]. The tryLock attempt polls it at
//! *helping-safe* points only — places where abandoning the attempt leaves
//! the descriptor in a state competitors can still help to completion — so
//! an abort never blocks anyone else (DESIGN.md §2.6).
//!
//! All deadline checks are uncounted reads of the process's own step
//! counter: an attempt that never aborts takes exactly the same counted
//! step sequence as one run without a deadline, so simulator determinism
//! and the step-complexity experiments are unaffected.

use wfl_runtime::Ctx;

/// An absolute own-step deadline for a lock acquisition.
///
/// `Deadline(s)` expires once the process has taken `s` own steps in total.
/// Own steps are the paper's cost model (and advance identically under the
/// simulator and real threads), so a deadline is deterministic in sim and
/// proportional to wall time under free-running threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline(pub u64);

impl Deadline {
    /// The infinite deadline: never expires, and disables the per-attempt
    /// abort polls entirely (attempts behave exactly as without this
    /// feature — in particular a mid-attempt stop flag does not abort).
    pub const NEVER: Deadline = Deadline(u64::MAX);

    /// A deadline at an absolute own-step count.
    pub fn at_steps(steps: u64) -> Deadline {
        Deadline(steps)
    }

    /// A deadline `budget` own steps from `ctx`'s current step count.
    pub fn after(ctx: &Ctx<'_>, budget: u64) -> Deadline {
        Deadline(ctx.steps().saturating_add(budget))
    }

    /// Whether this deadline is the infinite [`Deadline::NEVER`].
    pub fn is_never(&self) -> bool {
        self.0 == u64::MAX
    }

    /// Whether the deadline has passed (uncounted).
    pub fn expired(&self, ctx: &Ctx<'_>) -> bool {
        ctx.steps() >= self.0
    }

    /// Own steps left before expiry (0 if already expired; uncounted).
    pub fn remaining(&self, ctx: &Ctx<'_>) -> u64 {
        self.0.saturating_sub(ctx.steps())
    }
}

impl Default for Deadline {
    fn default() -> Deadline {
        Deadline::NEVER
    }
}

/// Why an in-flight tryLock attempt was abandoned mid-flight.
///
/// An aborted attempt has *lost* (its thunk will never run) **unless** a
/// competitor's helping raced the abort and completed it first — the
/// attempt then reports `won` with [`crate::AttemptMetrics::rescued`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The attempt's [`Deadline`] expired.
    Deadline,
    /// The driver's cooperative stop flag was raised mid-attempt. Only
    /// polled when a finite deadline is armed; without one, attempts run
    /// to completion as before and the stop flag is honored between
    /// attempts by the retry loops.
    Stop,
}

impl AbortReason {
    /// Stable index (the flight recorder's `Abort` event argument).
    pub fn index(self) -> usize {
        match self {
            AbortReason::Deadline => 0,
            AbortReason::Stop => 1,
        }
    }
}

/// Why a bounded retry loop ([`crate::lock_and_run_limited`] /
/// [`crate::lock_and_run_until`]) gave up without acquiring the locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUp {
    /// The driver's cooperative stop flag was raised.
    Stop,
    /// The per-process tag space is exhausted; the epoch boundary rewinds
    /// it.
    Tags,
    /// The heap signalled allocation pressure ([`Ctx::heap_low`]); the
    /// epoch boundary rewinds the lanes and clears it.
    HeapLow,
    /// The caller's [`Deadline`] expired (possibly mid-attempt).
    Deadline,
    /// The attempt budget (`max_attempts`) was used up.
    Attempts,
}

impl GiveUp {
    /// Stable index for per-reason counters (see the harness report).
    pub const COUNT: usize = 5;

    /// Index of this reason in `0..GiveUp::COUNT`.
    pub fn index(self) -> usize {
        match self {
            GiveUp::Stop => 0,
            GiveUp::Tags => 1,
            GiveUp::HeapLow => 2,
            GiveUp::Deadline => 3,
            GiveUp::Attempts => 4,
        }
    }

    /// Short stable label (JSON field names in the benchmarks).
    pub fn label(self) -> &'static str {
        match self {
            GiveUp::Stop => "stop",
            GiveUp::Tags => "tags",
            GiveUp::HeapLow => "heap_low",
            GiveUp::Deadline => "deadline",
            GiveUp::Attempts => "attempts",
        }
    }

    /// All reasons, in [`GiveUp::index`] order.
    pub fn all() -> [GiveUp; GiveUp::COUNT] {
        [GiveUp::Stop, GiveUp::Tags, GiveUp::HeapLow, GiveUp::Deadline, GiveUp::Attempts]
    }

    fn from_abort(r: AbortReason) -> GiveUp {
        match r {
            AbortReason::Deadline => GiveUp::Deadline,
            AbortReason::Stop => GiveUp::Stop,
        }
    }
}

impl From<AbortReason> for GiveUp {
    fn from(r: AbortReason) -> GiveUp {
        GiveUp::from_abort(r)
    }
}

/// Bounded exponential backoff between retry attempts: the pause before
/// retry `k` (counting the first retry as `k = 1`) is
/// `min(start << (k - 1), cap)` own local steps. Backing off in own steps
/// keeps the retry loop deterministic in sim; under real threads own steps
/// are proportional to wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Pause before the first retry, in own steps (0 disables backoff).
    pub start: u64,
    /// Upper bound on any single pause, in own steps.
    pub cap: u64,
}

impl Backoff {
    /// No backoff: retries are immediate (the behavior of
    /// [`crate::lock_and_run`] and [`crate::lock_and_run_limited`]).
    pub const NONE: Backoff = Backoff { start: 0, cap: 0 };

    /// An exponential policy from `start` doubling up to `cap` own steps.
    pub fn exponential(start: u64, cap: u64) -> Backoff {
        Backoff { start, cap: cap.max(start) }
    }

    /// The pause (in own steps) after `failed_attempts` failed attempts;
    /// 0 means no pause.
    pub fn pause_after(&self, failed_attempts: u64) -> u64 {
        if self.start == 0 || failed_attempts == 0 {
            return 0;
        }
        let shift = (failed_attempts - 1).min(63) as u32;
        if shift >= self.start.leading_zeros() {
            self.cap
        } else {
            (self.start << shift).min(self.cap)
        }
    }
}

/// The per-attempt abort poll used by `try_locks` / `try_locks_unknown` at
/// helping-safe points. Returns `None` when no finite deadline is armed —
/// the fast path is a single comparison, and attempts without deadlines
/// behave exactly as before this layer existed.
#[inline]
pub(crate) fn poll_abort(ctx: &Ctx<'_>, deadline: Deadline) -> Option<AbortReason> {
    if deadline.is_never() {
        return None;
    }
    if deadline.expired(ctx) {
        return Some(AbortReason::Deadline);
    }
    if ctx.stop_requested() {
        return Some(AbortReason::Stop);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let b = Backoff::exponential(8, 50);
        assert_eq!(b.pause_after(0), 0);
        assert_eq!(b.pause_after(1), 8);
        assert_eq!(b.pause_after(2), 16);
        assert_eq!(b.pause_after(3), 32);
        assert_eq!(b.pause_after(4), 50, "capped");
        assert_eq!(b.pause_after(400), 50, "huge attempt counts saturate at the cap");
        assert_eq!(Backoff::NONE.pause_after(7), 0);
    }

    #[test]
    fn give_up_indices_are_a_bijection() {
        let all = GiveUp::all();
        assert_eq!(all.len(), GiveUp::COUNT);
        for (i, g) in all.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        assert_eq!(GiveUp::from(AbortReason::Deadline), GiveUp::Deadline);
        assert_eq!(GiveUp::from(AbortReason::Stop), GiveUp::Stop);
    }

    #[test]
    fn never_deadline_is_default_and_infinite() {
        assert_eq!(Deadline::default(), Deadline::NEVER);
        assert!(Deadline::NEVER.is_never());
        assert!(!Deadline::at_steps(10).is_never());
    }
}
