//! Regression test for the idempotent-write double-apply bug.
//!
//! Found by deterministic adversarial simulation (seed 106, bursty
//! schedule): a stale helper of an earlier critical section read its log
//! slot as EMPTY, slept across the slot's completion AND a later critical
//! section's increment, then woke, re-read the *current* cell and
//! re-applied the old write — regressing the counter by one. A
//! check-then-apply write protocol cannot prevent this (the re-read makes
//! the CAS expectation fresh); the fix routes writes through the agreed
//! witness protocol, whose apply CAS expects a value that can never recur.
//!
//! This test pins the exact failing execution plus a wide sweep of bursty
//! schedules (the schedule family that exposes long helper sleeps).

use wfl_core::{try_locks, LockConfig, LockId, LockSpace, Scratch, TryLockRequest};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::Bursty;
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::{Addr, Ctx, Heap};

struct Incr;
impl Thunk for Incr {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let c = Addr::from_word(run.arg(0));
        let v = run.read(c);
        run.write(c, v + 1);
    }
    fn max_ops(&self) -> usize {
        2
    }
}

fn run_seed(seed: u64) -> (u64, u64) {
    let mut registry = Registry::new();
    let incr = registry.register(Incr);
    let heap = Heap::new(1 << 22);
    let space = LockSpace::create_root(&heap, 1, 4);
    let counter = heap.alloc_root(1);
    let outcomes = heap.alloc_root(20);
    let cfg = LockConfig::new(4, 1, 2).without_delays();
    let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
    let report = SimBuilder::new(&heap, 4)
        .seed(seed)
        .max_steps(200_000_000)
        .schedule(Bursty::new(4, 40, seed))
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for round in 0..5 {
                    let args = [counter.to_word()];
                    let req = TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &args };
                    let m = try_locks(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req);
                    ctx.write(outcomes.off((pid * 5 + round) as u32), m.won as u64);
                }
            }
        })
        .run();
    report.assert_clean();
    let wins: u64 = (0..20).map(|i| heap.peek(outcomes.off(i))).sum();
    (cell::value(heap.peek(counter)) as u64, wins)
}

#[test]
fn seed_106_no_lost_update() {
    let (counter, wins) = run_seed(106);
    assert_eq!(counter, wins, "the seed-106 double-apply regression is back");
}

#[test]
fn bursty_schedule_sweep_no_lost_updates() {
    for seed in 0..60 {
        let (counter, wins) = run_seed(seed);
        assert_eq!(counter, wins, "seed {seed}: lost or phantom update under bursty schedule");
    }
}
