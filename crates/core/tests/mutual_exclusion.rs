//! Mutual exclusion with idempotence (Definition 4.3), validated with the
//! classic lost-update test: critical sections perform non-atomic
//! read-then-write increments of counters **protected by the locks they
//! acquire** (one counter per lock; an attempt increments the counter of
//! every lock in its set). If two conflicting critical sections ever
//! overlapped, or one ran twice, or a failed attempt ran at all, some
//! lock's counter would diverge from the number of successful attempts
//! that covered it.

use wfl_core::{
    try_locks, try_locks_unknown, LockConfig, LockId, LockSpace, Scratch, TryLockRequest,
    UnknownConfig,
};
use wfl_idem::{cell, IdemRun, Registry, TagSource, Thunk};
use wfl_runtime::schedule::{Bursty, RoundRobin, SeededRandom, Weighted};
use wfl_runtime::sim::SimBuilder;
use wfl_runtime::{Addr, Ctx, Heap};

/// Critical section: increment the counter of every acquired lock
/// (read + write per counter — a lost-update detector).
struct IncrAll {
    max_locks: usize,
}
impl Thunk for IncrAll {
    fn run(&self, run: &mut IdemRun<'_, '_>) {
        let n = run.arg(0) as usize;
        for i in 0..n {
            let c = Addr::from_word(run.arg(1 + i));
            let v = run.read(c);
            run.write(c, v + 1);
        }
    }
    fn max_ops(&self) -> usize {
        2 * self.max_locks
    }
}

struct Outcome {
    /// counters[l] = final value of lock l's protected counter.
    counters: Vec<u32>,
    /// expected[l] = number of successful attempts whose lock set included l.
    expected: Vec<u64>,
    /// Total successful attempts.
    wins: u64,
    /// Total attempts.
    attempts_made: u64,
}

/// Runs `nprocs` processes, each making `attempts` tryLock attempts on the
/// lock set `pick_locks(pid, round)`; the critical section increments the
/// counter of each acquired lock.
#[allow(clippy::too_many_arguments)]
fn run_counter_workload(
    nprocs: usize,
    attempts: usize,
    nlocks: usize,
    kappa: usize,
    l_max: usize,
    seed: u64,
    schedule_kind: usize,
    unknown_variant: bool,
    pick_locks: impl Fn(usize, usize) -> Vec<LockId> + Send + Copy,
) -> Outcome {
    let mut registry = Registry::new();
    let incr = registry.register(IncrAll { max_locks: l_max });
    let heap = Heap::new(1 << 22);
    let capacity = if unknown_variant { nprocs } else { kappa };
    let space = LockSpace::create_root(&heap, nlocks, capacity);
    let counters = heap.alloc_root(nlocks);
    let outcomes = heap.alloc_root(nprocs * attempts);
    let cfg = LockConfig::new(kappa, l_max, 2 * l_max).without_delays();
    let ucfg = UnknownConfig::new();

    let (space_ref, reg_ref, cfg_ref, ucfg_ref) = (&space, &registry, &cfg, &ucfg);
    let n = nprocs;
    let mut builder = SimBuilder::new(&heap, nprocs).seed(seed).max_steps(200_000_000);
    builder = match schedule_kind {
        0 => builder.schedule(RoundRobin::new(n)),
        1 => builder.schedule(SeededRandom::new(n, seed)),
        2 => builder.schedule(Bursty::new(n, 40, seed)),
        _ => builder.schedule(Weighted::new(
            &(0..n as u64).map(|i| 1 + 7 * (i % 3)).collect::<Vec<_>>(),
            seed,
        )),
    };
    let report = builder
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for round in 0..attempts {
                    let locks = pick_locks(pid, round);
                    let mut args = vec![locks.len() as u64];
                    args.extend(locks.iter().map(|l| counters.off(l.0).to_word()));
                    let req = TryLockRequest { locks: &locks, thunk: incr, args: &args };
                    let m = if unknown_variant {
                        try_locks_unknown(
                            ctx, space_ref, reg_ref, ucfg_ref, &mut tags, &mut scratch, req,
                        )
                    } else {
                        try_locks(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req)
                    };
                    ctx.write(outcomes.off((pid * attempts + round) as u32), m.won as u64);
                }
            }
        })
        .run();
    report.assert_clean();
    assert!(report.completed, "workload did not finish within the step budget");

    let mut expected = vec![0u64; nlocks];
    let mut wins = 0u64;
    for pid in 0..nprocs {
        for round in 0..attempts {
            if heap.peek(outcomes.off((pid * attempts + round) as u32)) != 0 {
                wins += 1;
                for l in pick_locks(pid, round) {
                    expected[l.0 as usize] += 1;
                }
            }
        }
    }
    Outcome {
        counters: (0..nlocks).map(|l| cell::value(heap.peek(counters.off(l as u32)))).collect(),
        expected,
        wins,
        attempts_made: (nprocs * attempts) as u64,
    }
}

fn assert_exact(o: &Outcome, label: &str) {
    for (l, (&c, &e)) in o.counters.iter().zip(&o.expected).enumerate() {
        assert_eq!(c as u64, e, "{label}: lock {l} counter diverged (lost/phantom update)");
    }
}

#[test]
fn single_lock_two_processes_many_schedules() {
    for seed in 0..30 {
        let kind = (seed % 4) as usize;
        let o = run_counter_workload(2, 8, 1, 2, 1, seed, kind, false, |_pid, _round| {
            vec![LockId(0)]
        });
        assert_exact(&o, &format!("seed {seed} kind {kind}"));
        assert!(o.wins >= 1, "seed {seed}: someone must win sometimes");
    }
}

#[test]
fn single_lock_four_processes() {
    for seed in 0..12 {
        let o = run_counter_workload(4, 5, 1, 4, 1, 100 + seed, (seed % 4) as usize, false, |_p, _r| {
            vec![LockId(0)]
        });
        assert_exact(&o, &format!("seed {seed}"));
    }
}

#[test]
fn two_locks_per_attempt_dining_pairs() {
    // 4 processes, 4 locks in a ring: process i takes locks {i, i+1 mod 4}
    // (the dining philosophers conflict graph, κ = 2, L = 2).
    for seed in 0..12 {
        let o = run_counter_workload(
            4,
            4,
            4,
            2,
            2,
            200 + seed,
            (seed % 4) as usize,
            false,
            |pid, _round| vec![LockId(pid as u32), LockId(((pid + 1) % 4) as u32)],
        );
        assert_exact(&o, &format!("seed {seed}"));
    }
}

#[test]
fn random_overlapping_lock_sets() {
    // 4 processes over 3 locks; lock sets vary by round; contention on a
    // lock can reach 4.
    for seed in 0..10 {
        let o = run_counter_workload(
            4,
            4,
            3,
            4,
            2,
            300 + seed,
            (seed % 4) as usize,
            false,
            |pid, round| {
                let a = ((pid + round) % 3) as u32;
                let b = ((pid + round + 1) % 3) as u32;
                vec![LockId(a), LockId(b)]
            },
        );
        assert_exact(&o, &format!("seed {seed}"));
    }
}

#[test]
fn unknown_bounds_variant_preserves_mutual_exclusion() {
    for seed in 0..15 {
        let o = run_counter_workload(
            3,
            5,
            2,
            3,
            2,
            400 + seed,
            (seed % 4) as usize,
            true,
            |pid, round| {
                if (pid + round) % 2 == 0 {
                    vec![LockId(0), LockId(1)]
                } else {
                    vec![LockId(1)]
                }
            },
        );
        assert_exact(&o, &format!("seed {seed} (§6.2 variant)"));
    }
}

#[test]
fn disjoint_lock_sets_proceed_independently_and_exactly() {
    // Processes 0,1 fight over lock 0; processes 2,3 over lock 1. The
    // pairs never conflict; each lock's counter must match its own wins.
    for seed in 0..10 {
        let o = run_counter_workload(4, 5, 2, 2, 1, 500 + seed, 1, false, |pid, _round| {
            vec![LockId((pid / 2) as u32)]
        });
        assert_exact(&o, &format!("seed {seed}"));
        assert!(o.wins > 0);
    }
}

#[test]
fn solo_process_always_wins() {
    let o = run_counter_workload(1, 10, 1, 1, 1, 1, 0, false, |_p, _r| vec![LockId(0)]);
    assert_eq!(o.wins, 10, "uncontended attempts must always succeed");
    assert_eq!(o.attempts_made, 10);
    assert_exact(&o, "solo");
}

#[test]
fn solo_process_always_wins_unknown_variant() {
    let o = run_counter_workload(1, 10, 1, 1, 1, 2, 0, true, |_p, _r| vec![LockId(0)]);
    assert_eq!(o.wins, 10);
    assert_exact(&o, "solo unknown");
}

/// Real-threads stress of the contention-free hot path: the full tryLock
/// path under `RealConfig::fast()` (leased clock + tiered orderings +
/// reused scratch) with the classic lost-update detector. Every simulator
/// test runs Precise+SeqCst, so this is the only coverage of the weakened
/// orderings actually racing on hardware; the counter-equals-wins check
/// catches a mutual-exclusion violation (two attempts both deciding WON
/// and running their non-atomic increments concurrently), which the
/// philosophers meal check cannot (neighbors touch different cells).
#[test]
fn real_threads_tiered_hot_path_preserves_mutual_exclusion() {
    use wfl_core::Scratch;
    use wfl_runtime::real::{run_threads_with, RealConfig};

    let nprocs = 8;
    let rounds = 300;
    let mut registry = Registry::new();
    let incr = registry.register(IncrAll { max_locks: 1 });
    let heap = Heap::new(1 << 24);
    let space = LockSpace::create_root(&heap, 1, nprocs);
    let counter = heap.alloc_root(1);
    let wins_out = heap.alloc_root(nprocs);
    let cfg = LockConfig::new(nprocs, 1, 2).without_delays();
    let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
    let report = run_threads_with(&heap, nprocs, 77, None, RealConfig::fast(), |pid| {
        move |ctx: &Ctx| {
            let mut tags = TagSource::new(pid);
            let mut scratch = Scratch::new();
            let mut wins = 0u64;
            let args = [1u64, counter.to_word()];
            for _ in 0..rounds {
                let req = TryLockRequest { locks: &[LockId(0)], thunk: incr, args: &args };
                let m = try_locks(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req);
                wins += m.won as u64;
            }
            ctx.heap().poke(wins_out.off(pid as u32), wins);
        }
    });
    report.assert_clean();
    let wins: u64 = (0..nprocs).map(|i| heap.peek(wins_out.off(i as u32))).sum();
    assert!(wins > 0, "some attempt must succeed");
    assert_eq!(
        cell::value(heap.peek(counter)) as u64,
        wins,
        "lost or phantom update: tiered hot path broke mutual exclusion"
    );
}

/// With delays enabled, safety still holds and attempts take the fixed
/// length.
#[test]
fn delays_enabled_fixed_attempt_length() {
    struct Incr1;
    impl Thunk for Incr1 {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }
    let mut registry = Registry::new();
    let incr = registry.register(Incr1);
    let heap = Heap::new(1 << 22);
    let space = LockSpace::create_root(&heap, 1, 2);
    let counter = heap.alloc_root(1);
    let steps_out = heap.alloc_root(8);
    let cfg = LockConfig::new(2, 1, 2);
    let (space_ref, reg_ref, cfg_ref) = (&space, &registry, &cfg);
    let report = SimBuilder::new(&heap, 2)
        .schedule(SeededRandom::new(2, 9))
        .max_steps(50_000_000)
        .spawn_all(|pid| {
            move |ctx: &Ctx| {
                let mut tags = TagSource::new(pid);
                let mut scratch = Scratch::new();
                for round in 0..3 {
                    let req = TryLockRequest {
                        locks: &[LockId(0)],
                        thunk: incr,
                        args: &[counter.to_word()],
                    };
                    let m = try_locks(ctx, space_ref, reg_ref, cfg_ref, &mut tags, &mut scratch, req);
                    assert!(!m.delay_overrun, "c0/c1 too small for this workload");
                    ctx.write(steps_out.off((pid * 3 + round) as u32), m.steps);
                }
            }
        })
        .run();
    report.assert_clean();
    let expected = cfg.step_bound();
    for i in 0..6 {
        let s = heap.peek(steps_out.off(i));
        // Attempt length = T0 + T1 + a small constant tail (final reads).
        assert!(
            s >= expected && s <= expected + 8,
            "attempt {i} took {s} steps; expected ~{expected} (fixed length)"
        );
    }
}
