//! The thunk registry: maps thunk ids (stored in shared-memory frames) to
//! executable Rust code.
//!
//! The paper models a thunk as "a pointer to code left inside the lock" that
//! any process can execute. In Rust the executable part lives outside the
//! word heap in a [`Registry`] shared by all processes; the per-instance
//! state (arguments and the idempotence log) lives in the heap frame. A
//! thunk's control flow must be deterministic given its arguments and the
//! *logged* results of its shared operations — then every helper replays
//! the identical operation sequence, which is what makes the per-operation
//! log sound.

use crate::run::IdemRun;

/// Identifier of a registered thunk (stored in frames as a `u32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThunkId(pub u32);

/// A critical-section body, executable idempotently by any number of
/// helpers.
///
/// Implementations must:
/// * perform **all** shared-memory accesses through the [`IdemRun`] methods;
/// * have control flow that depends only on the run's arguments and the
///   values returned by those methods;
/// * perform at most [`Thunk::max_ops`] shared operations.
pub trait Thunk: Send + Sync {
    /// Executes (or helps execute) one instance of the thunk.
    fn run(&self, run: &mut IdemRun<'_, '_>);

    /// Upper bound on the number of `IdemRun` operations a run performs
    /// (the paper's `T`, which also sizes the frame's log).
    fn max_ops(&self) -> usize;
}

/// An immutable collection of registered thunks, shared by all processes.
#[derive(Default)]
pub struct Registry {
    thunks: Vec<Box<dyn Thunk>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("thunks", &self.thunks.len()).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a thunk, returning its id. Registration happens during
    /// setup, before processes run.
    ///
    /// # Panics
    /// Panics if the thunk declares more than [`crate::tag::MAX_OPS`]
    /// operations (the tag layout reserves 8 bits for the op index).
    pub fn register(&mut self, thunk: impl Thunk + 'static) -> ThunkId {
        assert!(
            thunk.max_ops() <= crate::tag::MAX_OPS,
            "thunk declares {} ops; the log supports at most {}",
            thunk.max_ops(),
            crate::tag::MAX_OPS
        );
        let id = ThunkId(self.thunks.len() as u32);
        self.thunks.push(Box::new(thunk));
        id
    }

    /// Looks up a thunk by id.
    ///
    /// # Panics
    /// Panics if the id was not issued by this registry.
    pub fn get(&self, id: ThunkId) -> &dyn Thunk {
        self.thunks
            .get(id.0 as usize)
            .unwrap_or_else(|| panic!("unknown thunk id {}", id.0))
            .as_ref()
    }

    /// Number of registered thunks.
    pub fn len(&self) -> usize {
        self.thunks.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.thunks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Thunk for Nop {
        fn run(&self, _run: &mut IdemRun<'_, '_>) {}
        fn max_ops(&self) -> usize {
            0
        }
    }

    #[test]
    fn register_and_get() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        let a = r.register(Nop);
        let b = r.register(Nop);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).max_ops(), 0);
    }

    struct TooBig;
    impl Thunk for TooBig {
        fn run(&self, _run: &mut IdemRun<'_, '_>) {}
        fn max_ops(&self) -> usize {
            crate::tag::MAX_OPS + 1
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_thunk_rejected() {
        Registry::new().register(TooBig);
    }
}
