//! Allocation of unique operation tags.
//!
//! A tag (30 bits) identifies one shared-memory operation of one thunk
//! attempt: `pid (10 bits) | attempt counter (12 bits) | op index (8 bits)`.
//! Uniqueness is what makes tagged writes apply at most once (no cell state
//! ever repeats, so no ABA); it is guaranteed *per heap lifetime* without
//! any shared coordination: each process draws attempt serials from its own
//! counter. After a quiescent [`wfl_runtime::Heap::reset_to`] /
//! [`wfl_runtime::Heap::reset_to_quiescent`] the counters may be rewound
//! (the harness's epoch lifecycle does this at every boundary), because no
//! helper from before the reset can still be poised to apply a stale
//! operation.
//!
//! Tag 0 is reserved for untagged cells, which costs exactly one encoding:
//! `pid 0, serial 0, op 0`. Process 0 therefore starts its serials at 1
//! ([`MAX_ATTEMPTS`]` - 1` usable attempts); every other process uses the
//! full range of [`MAX_ATTEMPTS`] serials. [`MIN_PROCESS_CAPACITY`] is the
//! bound that holds for every process.

/// Maximum processes whose pids fit the tag layout.
pub const MAX_PIDS: usize = 1 << 10;
/// Attempt serials in the tag layout (the per-process capacity is this for
/// every pid except 0, which loses one serial to the reserved tag 0).
pub const MAX_ATTEMPTS: u32 = 1 << 12;
/// Attempts per process per heap lifetime guaranteed for **every** process
/// (process 0's capacity; see module docs).
pub const MIN_PROCESS_CAPACITY: u32 = MAX_ATTEMPTS - 1;
/// Maximum shared operations per thunk.
pub const MAX_OPS: usize = 1 << 8;

/// A per-process source of unique attempt tag bases.
#[derive(Debug, Clone)]
pub struct TagSource {
    pid: u32,
    counter: u32,
    /// First usable serial (1 for pid 0, else 0); `reset` rewinds to it.
    start: u32,
}

impl TagSource {
    /// Creates the tag source for process `pid`.
    ///
    /// # Panics
    /// Panics if `pid >= MAX_PIDS`.
    pub fn new(pid: usize) -> TagSource {
        assert!(pid < MAX_PIDS, "pid {pid} exceeds tag space ({MAX_PIDS} pids)");
        // Serial 0 of pid 0 would make `op_tag(base, 0) == 0`, the reserved
        // untagged-cell encoding — skip exactly that one serial.
        let start = if pid == 0 { 1 } else { 0 };
        TagSource { pid: pid as u32, counter: start, start }
    }

    /// Returns a fresh attempt tag base. Op tags are `base | op_index`.
    ///
    /// # Panics
    /// Panics if the process exceeds its attempt capacity without a heap
    /// reset (the harness's epoch lifecycle resets well before this).
    pub fn next_base(&mut self) -> u32 {
        assert!(
            self.counter < MAX_ATTEMPTS,
            "tag space exhausted for pid {}: reset the heap between epochs",
            self.pid
        );
        let base = (self.pid << 20) | (self.counter << 8);
        self.counter += 1;
        base
    }

    /// Attempt serials this source can ever draw per heap lifetime.
    pub fn capacity(&self) -> u32 {
        MAX_ATTEMPTS - self.start
    }

    /// Attempt serials still available before [`TagSource::next_base`]
    /// panics (0 = exhausted; reset the heap and rewind).
    pub fn remaining(&self) -> u32 {
        MAX_ATTEMPTS - self.counter
    }

    /// Rewinds the counter after a quiescent heap reset.
    pub fn reset(&mut self) {
        self.counter = self.start;
    }
}

/// Combines an attempt tag base with an operation index.
///
/// # Panics
/// Panics (debug) if `op >= MAX_OPS`.
#[inline]
pub fn op_tag(base: u32, op: usize) -> u32 {
    debug_assert!(op < MAX_OPS, "op index {op} exceeds {MAX_OPS}");
    base | op as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bases_are_unique_within_and_across_pids() {
        let mut seen = HashSet::new();
        for pid in [0usize, 1, 5, MAX_PIDS - 1] {
            let mut src = TagSource::new(pid);
            for _ in 0..100 {
                assert!(seen.insert(src.next_base()), "duplicate tag base");
            }
        }
    }

    #[test]
    fn op_tags_are_unique_per_attempt() {
        let mut src = TagSource::new(3);
        let base = src.next_base();
        let mut seen = HashSet::new();
        for op in 0..MAX_OPS {
            assert!(seen.insert(op_tag(base, op)));
        }
    }

    #[test]
    fn tags_are_nonzero_and_fit_30_bits() {
        let mut src = TagSource::new(0);
        let base = src.next_base();
        assert!(op_tag(base, 0) > 0, "tag 0 is reserved for untagged cells");
        let mut src_max = TagSource::new(MAX_PIDS - 1);
        let mut last = 0;
        for _ in 0..MAX_ATTEMPTS {
            last = src_max.next_base();
        }
        assert_eq!(
            op_tag(last, MAX_OPS - 1),
            crate::cell::TAG_MAX,
            "the very last drawable tag is exactly the 30-bit maximum"
        );
    }

    #[test]
    fn nonzero_pids_use_the_full_serial_range() {
        // Regression for the off-by-one: the counter used to be
        // pre-incremented then asserted, wasting serial 0 for every pid.
        let mut src = TagSource::new(7);
        assert_eq!(src.capacity(), MAX_ATTEMPTS);
        assert_eq!(src.remaining(), MAX_ATTEMPTS);
        let first = src.next_base();
        assert_eq!(first, 7 << 20, "serial 0 is usable for pid != 0");
        let mut seen = HashSet::new();
        seen.insert(first);
        for _ in 1..MAX_ATTEMPTS {
            let base = src.next_base();
            assert!(seen.insert(base), "duplicate base inside the full range");
            assert!(op_tag(base, 0) != 0, "no pid-7 tag can collide with the reserved 0");
        }
        assert_eq!(seen.len() as u32, MAX_ATTEMPTS);
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn pid_zero_reserves_only_serial_zero() {
        let mut src = TagSource::new(0);
        assert_eq!(src.capacity(), MIN_PROCESS_CAPACITY);
        for _ in 0..MIN_PROCESS_CAPACITY {
            assert!(src.next_base() != 0, "pid 0 must never emit the reserved base");
        }
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "tag space exhausted")]
    fn draw_past_capacity_panics_at_the_boundary() {
        let mut src = TagSource::new(1);
        for _ in 0..MAX_ATTEMPTS {
            src.next_base();
        }
        src.next_base(); // one past the boundary
    }

    #[test]
    fn reset_rewinds_counter() {
        for pid in [0usize, 1] {
            let mut src = TagSource::new(pid);
            let first = src.next_base();
            src.next_base();
            src.reset();
            assert_eq!(src.next_base(), first, "pid {pid}");
            assert_eq!(src.remaining(), src.capacity() - 1, "pid {pid}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds tag space")]
    fn pid_out_of_range_panics() {
        TagSource::new(MAX_PIDS);
    }
}
