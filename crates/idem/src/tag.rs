//! Allocation of unique operation tags.
//!
//! A tag (30 bits) identifies one shared-memory operation of one thunk
//! attempt: `pid (10 bits) | attempt counter (12 bits) | op index (8 bits)`.
//! Uniqueness is what makes tagged writes apply at most once (no cell state
//! ever repeats, so no ABA); it is guaranteed *per heap lifetime* without
//! any shared coordination: each process draws attempt serials from its own
//! counter. After a quiescent [`wfl_runtime::Heap::reset_to`] the counters
//! may be rewound (the harness does this), because no helper from before
//! the reset can still be poised to apply a stale operation.

/// Maximum processes whose pids fit the tag layout.
pub const MAX_PIDS: usize = 1 << 10;
/// Maximum attempts per process per heap lifetime.
pub const MAX_ATTEMPTS: u32 = 1 << 12;
/// Maximum shared operations per thunk.
pub const MAX_OPS: usize = 1 << 8;

/// A per-process source of unique attempt tag bases.
#[derive(Debug, Clone)]
pub struct TagSource {
    pid: u32,
    counter: u32,
}

impl TagSource {
    /// Creates the tag source for process `pid`.
    ///
    /// # Panics
    /// Panics if `pid >= MAX_PIDS`.
    pub fn new(pid: usize) -> TagSource {
        assert!(pid < MAX_PIDS, "pid {pid} exceeds tag space ({MAX_PIDS} pids)");
        TagSource { pid: pid as u32, counter: 0 }
    }

    /// Returns a fresh attempt tag base. Op tags are `base | op_index`.
    ///
    /// # Panics
    /// Panics if the process exceeds [`MAX_ATTEMPTS`] attempts without a
    /// heap reset (the experiment harness resets well before this).
    pub fn next_base(&mut self) -> u32 {
        self.counter += 1;
        assert!(
            self.counter < MAX_ATTEMPTS,
            "tag space exhausted for pid {}: reset the heap between batches",
            self.pid
        );
        (self.pid << 20) | (self.counter << 8)
    }

    /// Rewinds the counter after a quiescent heap reset.
    pub fn reset(&mut self) {
        self.counter = 0;
    }
}

/// Combines an attempt tag base with an operation index.
///
/// # Panics
/// Panics (debug) if `op >= MAX_OPS`.
#[inline]
pub fn op_tag(base: u32, op: usize) -> u32 {
    debug_assert!(op < MAX_OPS, "op index {op} exceeds {MAX_OPS}");
    base | op as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn bases_are_unique_within_and_across_pids() {
        let mut seen = HashSet::new();
        for pid in [0usize, 1, 5, MAX_PIDS - 1] {
            let mut src = TagSource::new(pid);
            for _ in 0..100 {
                assert!(seen.insert(src.next_base()), "duplicate tag base");
            }
        }
    }

    #[test]
    fn op_tags_are_unique_per_attempt() {
        let mut src = TagSource::new(3);
        let base = src.next_base();
        let mut seen = HashSet::new();
        for op in 0..MAX_OPS {
            assert!(seen.insert(op_tag(base, op)));
        }
    }

    #[test]
    fn tags_are_nonzero_and_fit_30_bits() {
        let mut src = TagSource::new(0);
        let base = src.next_base();
        assert!(op_tag(base, 0) > 0, "tag 0 is reserved for untagged cells");
        let mut src_max = TagSource::new(MAX_PIDS - 1);
        let mut last = 0;
        for _ in 0..(MAX_ATTEMPTS - 1) {
            last = src_max.next_base();
        }
        assert!(op_tag(last, MAX_OPS - 1) <= crate::cell::TAG_MAX);
    }

    #[test]
    fn reset_rewinds_counter() {
        let mut src = TagSource::new(1);
        let first = src.next_base();
        src.next_base();
        src.reset();
        assert_eq!(src.next_base(), first);
    }

    #[test]
    #[should_panic(expected = "exceeds tag space")]
    fn pid_out_of_range_panics() {
        TagSource::new(MAX_PIDS);
    }
}
