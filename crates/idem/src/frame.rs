//! Thunk frames: the per-instance shared state of an idempotent thunk.
//!
//! A frame packs, in consecutive heap words:
//!
//! ```text
//! word 0:  thunk id (high 32) | op count (low 32)
//! word 1:  attempt tag base (30 bits)
//! word 2:  argument count
//! word 3:  completed flag (0/1) — fast path for helpers
//! word 4..4+nargs:        immutable arguments (written before publication)
//! word 4+nargs..+nops:    the operation log (one word per operation)
//! ```
//!
//! The frame address itself is what gets published (e.g. inside a lock
//! descriptor); any process holding it can [`Frame::help`] the thunk to
//! completion.

use crate::registry::{Registry, ThunkId};
use crate::run::IdemRun;
use wfl_runtime::{Addr, Ctx, Heap};

/// Handle to a thunk frame in the shared heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame(pub Addr);

const W_HEADER: u32 = 0;
const W_TAGBASE: u32 = 1;
const W_NARGS: u32 = 2;
const W_COMPLETED: u32 = 3;
const W_ARGS: u32 = 4;

impl Frame {
    /// Number of heap words a frame occupies for a thunk with `nops`
    /// operations and `nargs` arguments.
    pub fn words(nops: usize, nargs: usize) -> usize {
        4 + nargs + nops
    }

    /// Creates and initializes a frame as the running process (counted
    /// steps). The frame is fully initialized before the returned address
    /// is shared, so no synchronization is needed on the header words.
    pub fn create(ctx: &Ctx<'_>, registry: &Registry, id: ThunkId, tag_base: u32, args: &[u64]) -> Frame {
        let nops = registry.get(id).max_ops();
        let base = ctx.alloc(Self::words(nops, args.len()));
        ctx.write_rel(base.off(W_HEADER), ((id.0 as u64) << 32) | nops as u64);
        ctx.write_rel(base.off(W_TAGBASE), tag_base as u64);
        ctx.write_rel(base.off(W_NARGS), args.len() as u64);
        // completed flag and log slots are zero from the allocator.
        for (i, &a) in args.iter().enumerate() {
            ctx.write_rel(base.off(W_ARGS + i as u32), a);
        }
        Frame(base)
    }

    /// Creates a frame during harness setup (uncounted steps).
    pub fn create_root(heap: &Heap, registry: &Registry, id: ThunkId, tag_base: u32, args: &[u64]) -> Frame {
        let nops = registry.get(id).max_ops();
        let base = heap.alloc_root(Self::words(nops, args.len()));
        heap.poke(base.off(W_HEADER), ((id.0 as u64) << 32) | nops as u64);
        heap.poke(base.off(W_TAGBASE), tag_base as u64);
        heap.poke(base.off(W_NARGS), args.len() as u64);
        for (i, &a) in args.iter().enumerate() {
            heap.poke(base.off(W_ARGS + i as u32), a);
        }
        Frame(base)
    }

    /// Runs (or helps run) the thunk to completion. Idempotent: any number
    /// of processes may call this concurrently; the combined effect equals
    /// one run. On return, a complete run of the thunk has finished.
    pub fn help(self, ctx: &Ctx<'_>, registry: &Registry) {
        // Fast path: someone already finished a run.
        if ctx.read_acq(self.0.off(W_COMPLETED)) != 0 {
            return;
        }
        let header = ctx.read_acq(self.0.off(W_HEADER));
        let id = ThunkId((header >> 32) as u32);
        let nops = (header & 0xffff_ffff) as usize;
        let tag_base = ctx.read_acq(self.0.off(W_TAGBASE)) as u32;
        let nargs = ctx.read_acq(self.0.off(W_NARGS)) as usize;
        let args_base = self.0.off(W_ARGS);
        let log_base = self.0.off(W_ARGS + nargs as u32);
        let mut run = IdemRun::new(ctx, args_base, nargs, log_base, nops, tag_base);
        registry.get(id).run(&mut run);
        // Mark completion (monotonic write; Release so the fast path's
        // Acquire read of the flag also sees the thunk's effects).
        ctx.write_rel(self.0.off(W_COMPLETED), 1);
    }

    /// Whether some run of the thunk has finished (uncounted inspection).
    pub fn is_completed(self, heap: &Heap) -> bool {
        heap.peek(self.0.off(W_COMPLETED)) != 0
    }

    /// Runs the thunk **raw**: operations go straight to memory (tag 0),
    /// bypassing the idempotence log. NOT idempotent and NOT safe to run
    /// concurrently with helpers of the same frame — for single-runner
    /// baselines and for measuring the construction's overhead (E9).
    pub fn run_raw(self, ctx: &Ctx<'_>, registry: &Registry) {
        let header = ctx.read_acq(self.0.off(W_HEADER));
        let id = ThunkId((header >> 32) as u32);
        let nargs = ctx.read_acq(self.0.off(W_NARGS)) as usize;
        let args_base = self.0.off(W_ARGS);
        let mut run = IdemRun::new_raw(ctx, args_base, nargs);
        registry.get(id).run(&mut run);
        ctx.write_rel(self.0.off(W_COMPLETED), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Thunk;
    use crate::{cell, tag::TagSource};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;

    /// read a; write b = a + arg1.
    struct AddInto;
    impl Thunk for AddInto {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let src = Addr::from_word(run.arg(0));
            let dst = Addr::from_word(run.arg(1));
            let delta = run.arg(2) as u32;
            let v = run.read(src);
            run.write(dst, v.wrapping_add(delta));
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn frame_words_layout() {
        assert_eq!(Frame::words(2, 3), 9);
        assert_eq!(Frame::words(0, 0), 4);
    }

    #[test]
    fn single_run_executes_thunk() {
        let mut registry = Registry::new();
        let id = registry.register(AddInto);
        let heap = Heap::new(1 << 10);
        let src = heap.alloc_root(1);
        let dst = heap.alloc_root(1);
        heap.poke(src, cell::untagged(40));
        let mut tags = TagSource::new(0);
        let frame =
            Frame::create_root(&heap, &registry, id, tags.next_base(), &[src.to_word(), dst.to_word(), 2]);

        let report = SimBuilder::new(&heap, 1)
            .spawn(|ctx: &Ctx| frame.help(ctx, &registry))
            .run();
        report.assert_clean();
        assert_eq!(cell::value(heap.peek(dst)), 42);
        assert!(frame.is_completed(&heap));
    }

    #[test]
    fn many_helpers_one_effect() {
        for seed in 0..20 {
            let mut registry = Registry::new();
            let id = registry.register(AddInto);
            let heap = Heap::new(1 << 10);
            let src = heap.alloc_root(1);
            let dst = heap.alloc_root(1);
            heap.poke(src, cell::untagged(7));
            heap.poke(dst, cell::untagged(100));
            let mut tags = TagSource::new(0);
            let frame = Frame::create_root(
                &heap,
                &registry,
                id,
                tags.next_base(),
                &[src.to_word(), dst.to_word(), 1],
            );
            let report = SimBuilder::new(&heap, 6)
                .schedule(SeededRandom::new(6, seed))
                .spawn_all(|_pid| {
                    let registry = &registry;
                    move |ctx: &Ctx| frame.help(ctx, registry)
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(dst)), 8, "seed {seed}");
        }
    }

    /// Increment-in-place: the classic double-apply trap. read x; write x+1.
    struct IncrInPlace;
    impl Thunk for IncrInPlace {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let x = Addr::from_word(run.arg(0));
            let v = run.read(x);
            run.write(x, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn increment_in_place_applies_exactly_once() {
        for seed in 0..50 {
            let mut registry = Registry::new();
            let id = registry.register(IncrInPlace);
            let heap = Heap::new(1 << 10);
            let x = heap.alloc_root(1);
            let mut tags = TagSource::new(0);
            let frame = Frame::create_root(&heap, &registry, id, tags.next_base(), &[x.to_word()]);
            let report = SimBuilder::new(&heap, 8)
                .schedule(SeededRandom::new(8, 1000 + seed))
                .spawn_all(|_pid| {
                    let registry = &registry;
                    move |ctx: &Ctx| frame.help(ctx, registry)
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(x)), 1, "seed {seed}: increment must apply once");
        }
    }
}
