//! Idempotent execution of thunks (critical sections), after §4.1 and
//! Theorem 4.2 of Ben-David & Blelloch (PODC 2022).
//!
//! Wait-free locks require *helping*: when a tryLock attempt wins but its
//! owner is delayed, other processes run its critical section on its
//! behalf. Several processes may therefore run the same code concurrently,
//! and correctness demands **idempotence** (Definition 4.1): no matter how
//! many interleaved runs execute, the combined effect equals exactly one
//! run, completing at the end of the first finished run.
//!
//! # The construction
//!
//! Every thunk instance gets a [`frame::Frame`] in the shared heap holding
//! a per-operation **log** (one word per shared operation). A run executes
//! the thunk's operations in program order; for each operation it first
//! consults the log — if a result is recorded, it adopts it and skips the
//! effect; otherwise it races (by CAS on the log slot) to be the one whose
//! result is recorded:
//!
//! * **Reads** record the value read; the recorded read is the
//!   linearization point. Races with arbitrary concurrent writers are
//!   allowed.
//! * **Writes** target *tagged cells* ([`cell`]): each cell word packs a
//!   32-bit value with a 30-bit tag unique to this (attempt, operation).
//!   Applying with a full-word CAS means a write can take effect at most
//!   once (cell states never repeat, so there is no ABA), and the
//!   tag-observed / log-recorded checks make it take effect at least once.
//!   Races with other tagged writers are allowed.
//! * **CAS** uses a two-phase *witness* protocol: helpers agree via the log
//!   on a single witnessed cell state, then all apply from exactly that
//!   witness, so at most one apply can succeed. This is linearizable
//!   provided CAS-target cells are mutated only through tagged operations
//!   (no unrelated racy plain writes to CAS targets) — the restriction,
//!   relative to the paper's full-version construction, is documented in
//!   `DESIGN.md` §1.4. All uses in this repository satisfy it.
//! * **One-shot transitions** (e.g. a descriptor status moving
//!   `active → won`) need no log at all: monotonic CAS transitions are
//!   idempotent under arbitrary races.
//!
//! Every operation adds O(1) shared accesses, giving the constant-factor
//! overhead of Theorem 4.2 (measured in experiment E9).
//!
//! # Example
//!
//! ```
//! use wfl_runtime::{Heap, sim::SimBuilder, schedule::SeededRandom, Ctx};
//! use wfl_idem::{Frame, Registry, Thunk, IdemRun, cell};
//!
//! // A thunk that increments a tagged cell (read + write = 2 ops).
//! struct Incr;
//! impl Thunk for Incr {
//!     fn run(&self, run: &mut IdemRun<'_, '_>) {
//!         let target = wfl_runtime::Addr::from_word(run.arg(0));
//!         let v = run.read(target);
//!         run.write(target, v + 1);
//!     }
//!     fn max_ops(&self) -> usize { 2 }
//! }
//!
//! let mut registry = Registry::new();
//! let incr = registry.register(Incr);
//! let heap = Heap::new(1 << 12);
//! let target = heap.alloc_root(1);
//! let frame = Frame::create_root(&heap, &registry, incr, 0x100, &[target.to_word()]);
//!
//! // Four processes all help run the SAME thunk instance concurrently.
//! let report = SimBuilder::new(&heap, 4)
//!     .schedule(SeededRandom::new(4, 7))
//!     .spawn_all(|_pid| {
//!         let registry = &registry;
//!         move |ctx: &Ctx| { frame.help(ctx, registry); }
//!     })
//!     .run();
//! report.assert_clean();
//! // Despite four interleaved runs, the increment happened exactly once.
//! assert_eq!(cell::value(heap.peek(target)), 1);
//! ```

pub mod cell;
pub mod frame;
pub mod registry;
pub mod run;
pub mod tag;

pub use frame::Frame;
pub use registry::{Registry, Thunk, ThunkId};
pub use run::IdemRun;
pub use tag::TagSource;
