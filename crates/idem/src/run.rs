//! The idempotent operation protocols.
//!
//! An [`IdemRun`] is one process's cursor over a thunk frame's operation
//! log. Operations execute in program order; op `i` uses log slot `i`.
//! Each slot is a single word:
//!
//! ```text
//! bits 63..62: state — 00 EMPTY, 01 WITNESS, 10 DONE
//! bits 61..0:  payload — for WITNESS, the full witnessed cell word;
//!              for DONE, the recorded result
//! ```
//!
//! Slot states advance monotonically `EMPTY → (WITNESS →) DONE`; an
//! operation returns only once its slot is DONE, so all runs agree on every
//! result, and hence (for deterministic thunks) on the entire operation
//! sequence.
//!
//! # Safety scope (see DESIGN.md §1.4)
//!
//! * `read` is correct under arbitrary concurrent mutation of the cell.
//! * `write` and `cas` are correct when, during the thunk's interval, the
//!   target cell is mutated only by helpers of this same thunk — exactly
//!   the protection the lock algorithm provides for critical-section data.
//!   (`write` additionally tolerates *earlier stale helpers* of the same
//!   thunk, whose re-applies are defused by tag uniqueness.)

use crate::cell;
use crate::tag::op_tag;
use wfl_runtime::{Addr, Ctx};

const ST_MASK: u64 = 0b11 << 62;
const ST_EMPTY: u64 = 0b00 << 62;
const ST_WITNESS: u64 = 0b01 << 62;
const ST_DONE: u64 = 0b10 << 62;
const PAYLOAD_MASK: u64 = (1 << 62) - 1;

#[inline]
fn payload(slot: u64) -> u64 {
    slot & PAYLOAD_MASK
}

/// Execution mode of a cursor: logged (idempotent) or raw (direct).
enum Mode {
    /// Idempotent execution through the operation log.
    Logged { log_base: Addr, nops: usize, tag_base: u32 },
    /// Raw execution: operations go straight to memory with tag 0. NOT
    /// idempotent — for baselines and for measuring the construction's
    /// overhead (experiment E9). Never run concurrently with helpers.
    Raw,
}

/// One process's execution cursor over a thunk frame.
pub struct IdemRun<'c, 'h> {
    ctx: &'c Ctx<'h>,
    args_base: Addr,
    nargs: usize,
    mode: Mode,
    next_op: usize,
}

impl std::fmt::Debug for IdemRun<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdemRun").field("next_op", &self.next_op).finish()
    }
}

impl<'c, 'h> IdemRun<'c, 'h> {
    /// Creates a logged (idempotent) cursor (called by
    /// [`crate::Frame::help`]).
    pub(crate) fn new(
        ctx: &'c Ctx<'h>,
        args_base: Addr,
        nargs: usize,
        log_base: Addr,
        nops: usize,
        tag_base: u32,
    ) -> IdemRun<'c, 'h> {
        IdemRun { ctx, args_base, nargs, mode: Mode::Logged { log_base, nops, tag_base }, next_op: 0 }
    }

    /// Creates a raw cursor (called by [`crate::Frame::run_raw`]).
    pub(crate) fn new_raw(ctx: &'c Ctx<'h>, args_base: Addr, nargs: usize) -> IdemRun<'c, 'h> {
        IdemRun { ctx, args_base, nargs, mode: Mode::Raw, next_op: 0 }
    }

    /// The executing process's context (for local steps and randomness;
    /// do **not** bypass the log with direct shared accesses).
    pub fn ctx(&self) -> &'c Ctx<'h> {
        self.ctx
    }

    /// Reads immutable argument `i` (these are fixed before the frame is
    /// published, so a plain read is safe).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> u64 {
        assert!(i < self.nargs, "argument {i} out of range ({} args)", self.nargs);
        self.ctx.read_acq(self.args_base.off(i as u32))
    }

    /// Number of operations executed so far by this cursor.
    pub fn ops_used(&self) -> usize {
        self.next_op
    }

    #[inline]
    fn take_op(&mut self) -> (Addr, u32) {
        let Mode::Logged { log_base, nops, tag_base } = self.mode else {
            unreachable!("take_op in raw mode")
        };
        assert!(
            self.next_op < nops,
            "thunk exceeded its declared max_ops ({nops})"
        );
        let slot = log_base.off(self.next_op as u32);
        let tag = op_tag(tag_base, self.next_op);
        self.next_op += 1;
        (slot, tag)
    }

    /// Idempotent read of a tagged cell: returns the (agreed) 32-bit value.
    ///
    /// All runs of the thunk observe the same value — the one recorded by
    /// the first helper to fill the log slot — which is the operation's
    /// linearization point. Safe under arbitrary concurrent writers.
    pub fn read(&mut self, cell_addr: Addr) -> u32 {
        if matches!(self.mode, Mode::Raw) {
            self.next_op += 1;
            return cell::value(self.ctx.read_acq(cell_addr));
        }
        let (slot, _tag) = self.take_op();
        loop {
            let s = self.ctx.read_acq(slot);
            if s & ST_MASK == ST_DONE {
                wfl_runtime::trace::emit(|| format!("t={} pid={} idem.read cell={:?} slot={:?} -> {}", self.ctx.now(), self.ctx.pid(), cell_addr, slot, payload(s) as u32));
                return payload(s) as u32;
            }
            let w = self.ctx.read_acq(cell_addr);
            // Record the value we saw; the first recorder wins.
            self.ctx.cas_bool_sync(slot, ST_EMPTY, ST_DONE | cell::value(w) as u64);
        }
    }

    /// Idempotent write of a 32-bit value to a tagged cell.
    ///
    /// Uses the same two-phase **witness protocol** as [`IdemRun::cas`]:
    /// helpers first agree (via the log slot) on a single witnessed cell
    /// state, and the apply CAS expects exactly that agreed witness — never
    /// a re-read value. Because the witness (with its unique tag) can never
    /// recur in the cell, at most one apply can ever succeed, *including*
    /// by helpers that slept across the slot check (the double-apply race a
    /// check-then-apply scheme would allow — found by the seed-106
    /// adversarial trace, see the regression test in `tests/`). Requires
    /// that the cell is not concurrently mutated by code outside this
    /// thunk's helpers (lock-protected data).
    pub fn write(&mut self, cell_addr: Addr, value: u32) {
        if matches!(self.mode, Mode::Raw) {
            self.next_op += 1;
            self.ctx.write_rel(cell_addr, cell::untagged(value));
            return;
        }
        let (slot, tag) = self.take_op();
        loop {
            let s = self.ctx.read_acq(slot);
            match s & ST_MASK {
                ST_DONE => {
                    wfl_runtime::trace::emit(|| {
                        format!(
                            "t={} pid={} idem.write cell={:?} slot={:?} tag={:x} v={} done (cell now {:x})",
                            self.ctx.now(),
                            self.ctx.pid(),
                            cell_addr,
                            slot,
                            tag,
                            value,
                            self.ctx.heap().peek(cell_addr)
                        )
                    });
                    return;
                }
                ST_EMPTY => {
                    // Propose what we see as THE witness. If our slot read
                    // was stale (the op has advanced), this CAS fails and
                    // the loop re-reads the slot — we never touch the cell
                    // from the EMPTY branch.
                    let w = self.ctx.read_acq(cell_addr);
                    self.ctx.cas_bool_sync(slot, ST_EMPTY, ST_WITNESS | w);
                }
                ST_WITNESS => {
                    let w = payload(s);
                    let cur = self.ctx.read_acq(cell_addr);
                    if cell::tag(cur) == tag {
                        // The apply happened (by us or another helper).
                        self.ctx.cas_bool_sync(slot, s, ST_DONE);
                        continue;
                    }
                    // Apply from exactly the agreed witness; since `w` can
                    // never recur, at most one such CAS ever succeeds.
                    let ok = self.ctx.cas_bool_sync(cell_addr, w, cell::pack(tag, value));
                    wfl_runtime::trace::emit(|| {
                        format!(
                            "t={} pid={} idem.write cell={:?} slot={:?} tag={:x} v={} apply from {:x} ok={}",
                            self.ctx.now(),
                            self.ctx.pid(),
                            cell_addr,
                            slot,
                            tag,
                            value,
                            w,
                            ok
                        )
                    });
                }
                _ => unreachable!("corrupt log slot state {s:#x}"),
            }
        }
    }

    /// Idempotent compare-and-swap on a tagged cell: atomically replaces
    /// the value `expected` with `new`; returns whether it succeeded. All
    /// runs observe the same outcome.
    ///
    /// Uses a two-phase witness protocol: helpers agree (via the log) on a
    /// single witnessed cell state; a failure outcome linearizes at that
    /// witness read, a success at the unique apply. Requires that the cell
    /// is mutated only by this thunk's helpers during the thunk's interval
    /// (lock-protected data).
    pub fn cas(&mut self, cell_addr: Addr, expected: u32, new: u32) -> bool {
        if matches!(self.mode, Mode::Raw) {
            self.next_op += 1;
            return self
                .ctx
                .cas_bool_sync(cell_addr, cell::untagged(expected), cell::untagged(new));
        }
        let (slot, tag) = self.take_op();
        loop {
            let s = self.ctx.read_acq(slot);
            match s & ST_MASK {
                ST_DONE => return payload(s) != 0,
                ST_EMPTY => {
                    let w = self.ctx.read_acq(cell_addr);
                    if cell::tag(w) == tag {
                        // Applied already (so a witness exists); re-read the
                        // slot, which can no longer be EMPTY.
                        continue;
                    }
                    // Propose what we saw as THE witness.
                    self.ctx.cas_bool_sync(slot, ST_EMPTY, ST_WITNESS | w);
                }
                ST_WITNESS => {
                    let w = payload(s);
                    if cell::value(w) != expected {
                        // Agreed witness refutes `expected`: CAS fails,
                        // linearizing at the witness read.
                        self.ctx.cas_bool_sync(slot, s, ST_DONE);
                        continue;
                    }
                    let cur = self.ctx.read_acq(cell_addr);
                    if cell::tag(cur) == tag {
                        // The apply happened (by us or another helper).
                        self.ctx.cas_bool_sync(slot, s, ST_DONE | 1);
                        continue;
                    }
                    // Apply from exactly the agreed witness; at most one
                    // such CAS can ever succeed.
                    self.ctx.cas_bool_sync(cell_addr, w, cell::pack(tag, new));
                }
                _ => unreachable!("corrupt log slot state {s:#x}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::registry::{Registry, Thunk};
    use crate::tag::TagSource;
    use wfl_runtime::schedule::{RoundRobin, SeededRandom};
    use wfl_runtime::sim::SimBuilder;
    use wfl_runtime::Heap;

    /// r = cas(c, exp, new); write(out, r ? 1 : 0)
    struct CasThenRecord;
    impl Thunk for CasThenRecord {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let out = Addr::from_word(run.arg(1));
            let exp = run.arg(2) as u32;
            let new = run.arg(3) as u32;
            let ok = run.cas(c, exp, new);
            run.write(out, if ok { 1 } else { 0 });
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    fn run_helpers(nprocs: usize, seed: u64, init_c: u32, exp: u32, new: u32) -> (u32, u32, u32) {
        let mut registry = Registry::new();
        let id = registry.register(CasThenRecord);
        let heap = Heap::new(1 << 12);
        let c = heap.alloc_root(1);
        let out = heap.alloc_root(1);
        heap.poke(c, cell::untagged(init_c));
        let mut tags = TagSource::new(0);
        let frame = Frame::create_root(
            &heap,
            &registry,
            id,
            tags.next_base(),
            &[c.to_word(), out.to_word(), exp as u64, new as u64],
        );
        let report = SimBuilder::new(&heap, nprocs)
            .schedule(SeededRandom::new(nprocs, seed))
            .spawn_all(|_pid| {
                let registry = &registry;
                move |ctx| frame.help(ctx, registry)
            })
            .run();
        report.assert_clean();
        (cell::value(heap.peek(c)), cell::value(heap.peek(out)), cell::tag(heap.peek(c)))
    }

    #[test]
    fn cas_success_applies_once_and_all_agree() {
        for seed in 0..30 {
            let (c, out, tag) = run_helpers(6, seed, 0, 0, 5);
            assert_eq!(c, 5, "seed {seed}");
            assert_eq!(out, 1, "seed {seed}: all runs must record success");
            assert_ne!(tag, 0, "cell must carry the op tag");
        }
    }

    #[test]
    fn cas_failure_has_no_effect_and_all_agree() {
        for seed in 0..30 {
            let (c, out, tag) = run_helpers(6, seed, 3, 0, 5);
            assert_eq!(c, 3, "seed {seed}: failed CAS must not change the cell");
            assert_eq!(out, 0, "seed {seed}: all runs must record failure");
            assert_eq!(tag, 0, "failed CAS must not install a tag");
        }
    }

    /// A chain of dependent ops across three cells, to check agreement on
    /// intermediate reads: b = a + 1; c = b * 2.
    struct Chain;
    impl Thunk for Chain {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let a = Addr::from_word(run.arg(0));
            let b = Addr::from_word(run.arg(1));
            let c = Addr::from_word(run.arg(2));
            let va = run.read(a);
            run.write(b, va + 1);
            let vb = run.read(b);
            run.write(c, vb * 2);
        }
        fn max_ops(&self) -> usize {
            4
        }
    }

    #[test]
    fn dependent_chain_matches_sequential_execution() {
        for seed in 0..30 {
            let mut registry = Registry::new();
            let id = registry.register(Chain);
            let heap = Heap::new(1 << 12);
            let a = heap.alloc_root(1);
            let b = heap.alloc_root(1);
            let c = heap.alloc_root(1);
            heap.poke(a, cell::untagged(10));
            let mut tags = TagSource::new(0);
            let frame = Frame::create_root(
                &heap,
                &registry,
                id,
                tags.next_base(),
                &[a.to_word(), b.to_word(), c.to_word()],
            );
            let report = SimBuilder::new(&heap, 5)
                .schedule(SeededRandom::new(5, 77 + seed))
                .spawn_all(|_pid| {
                    let registry = &registry;
                    move |ctx| frame.help(ctx, registry)
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(b)), 11, "seed {seed}");
            assert_eq!(cell::value(heap.peek(c)), 22, "seed {seed}");
        }
    }

    /// Reads agree even when a racy external writer keeps flipping the cell.
    struct ReadTwiceRecord;
    impl Thunk for ReadTwiceRecord {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let src = Addr::from_word(run.arg(0));
            let out1 = Addr::from_word(run.arg(1));
            let out2 = Addr::from_word(run.arg(2));
            let v1 = run.read(src);
            run.write(out1, v1);
            let v2 = run.read(src);
            run.write(out2, v2);
        }
        fn max_ops(&self) -> usize {
            4
        }
    }

    #[test]
    fn racy_reads_are_agreed_and_plausible() {
        for seed in 0..20 {
            let mut registry = Registry::new();
            let id = registry.register(ReadTwiceRecord);
            let heap = Heap::new(1 << 12);
            let src = heap.alloc_root(1);
            let out1 = heap.alloc_root(1);
            let out2 = heap.alloc_root(1);
            heap.poke(src, cell::untagged(100));
            let mut tags = TagSource::new(0);
            let frame = Frame::create_root(
                &heap,
                &registry,
                id,
                tags.next_base(),
                &[src.to_word(), out1.to_word(), out2.to_word()],
            );
            // Processes 0..3 help; process 3 is a racy writer flipping src
            // between 100 and 200 with plain (untagged) writes.
            let reg = &registry;
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, 555 + seed))
                .spawn(move |ctx: &Ctx| frame.help(ctx, reg))
                .spawn(move |ctx: &Ctx| frame.help(ctx, reg))
                .spawn(move |ctx: &Ctx| frame.help(ctx, reg))
                .spawn(move |ctx: &Ctx| {
                    for i in 0..200u32 {
                        ctx.write(src, cell::untagged(if i % 2 == 0 { 200 } else { 100 }));
                    }
                })
                .run();
            report.assert_clean();
            let o1 = cell::value(heap.peek(out1));
            let o2 = cell::value(heap.peek(out2));
            assert!(o1 == 100 || o1 == 200, "seed {seed}: out1={o1}");
            assert!(o2 == 100 || o2 == 200, "seed {seed}: out2={o2}");
        }
    }

    /// Ops beyond max_ops must panic loudly (they would overrun the log).
    struct Overrun;
    impl Thunk for Overrun {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let a = Addr::from_word(run.arg(0));
            run.read(a);
            run.read(a);
        }
        fn max_ops(&self) -> usize {
            1
        }
    }

    #[test]
    fn exceeding_max_ops_is_reported() {
        let mut registry = Registry::new();
        let id = registry.register(Overrun);
        let heap = Heap::new(1 << 10);
        let a = heap.alloc_root(1);
        let mut tags = TagSource::new(0);
        let frame = Frame::create_root(&heap, &registry, id, tags.next_base(), &[a.to_word()]);
        let reg = &registry;
        let report = SimBuilder::new(&heap, 1).spawn(move |ctx: &Ctx| frame.help(ctx, reg)).run();
        assert_eq!(report.panics.len(), 1);
        assert!(report.panics[0].1.contains("max_ops"));
    }

    /// Step cost of an op sequence is linear with a small constant
    /// (Theorem 4.2: constant overhead per operation).
    struct ManyWrites(usize);
    impl Thunk for ManyWrites {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let base = Addr::from_word(run.arg(0));
            for i in 0..self.0 {
                run.write(base.off(i as u32), i as u32);
            }
        }
        fn max_ops(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn solo_run_overhead_is_constant_factor() {
        let n = 64;
        let mut registry = Registry::new();
        let id = registry.register(ManyWrites(n));
        let heap = Heap::new(1 << 14);
        let base = heap.alloc_root(n);
        let mut tags = TagSource::new(0);
        let frame = Frame::create_root(&heap, &registry, id, tags.next_base(), &[base.to_word()]);
        let reg = &registry;
        let report = SimBuilder::new(&heap, 1)
            .schedule(RoundRobin::new(1))
            .spawn(move |ctx: &Ctx| frame.help(ctx, reg))
            .run();
        report.assert_clean();
        let steps = report.steps[0] as usize;
        // A raw run would take n writes; the idempotent run must stay
        // within a constant factor (plus frame-header constant). A solo
        // witness-protocol write costs 10 steps (3 slot reads, 2 cell
        // reads, 3 CAS, bookkeeping), so 12n is a safe constant bound.
        assert!(steps <= 12 * n + 16, "steps {steps} for {n} ops is not O(1) overhead");
        for i in 0..n {
            assert_eq!(cell::value(heap.peek(base.off(i as u32))), i as u32);
        }
    }
}
