//! Tagged cells: the memory representation for idempotent writes and CAS.
//!
//! A tagged cell is one heap word packing a 32-bit value with a 30-bit tag
//! identifying the (attempt, operation) that last mutated it:
//!
//! ```text
//! bit 63 62 61........32 31.........0
//!      0  0 |   tag 30b  |  value 32b |
//! ```
//!
//! Because every tagged mutation installs a tag that is unique across the
//! heap's lifetime, a cell never holds the same word twice, so a full-word
//! CAS from an observed state can succeed at most once — the at-most-once
//! half of idempotent writes, with no ABA possible. The two top bits are
//! kept zero so a cell word always fits in a log slot's 62-bit payload.

/// Maximum tag (30 bits).
pub const TAG_MAX: u32 = (1 << 30) - 1;

/// Packs a tag and value into a cell word.
///
/// # Panics
/// Panics (debug) if the tag exceeds 30 bits.
#[inline]
pub fn pack(tag: u32, value: u32) -> u64 {
    debug_assert!(tag <= TAG_MAX, "tag {tag:#x} exceeds 30 bits");
    ((tag as u64) << 32) | value as u64
}

/// The 32-bit value stored in a cell word.
#[inline]
pub fn value(word: u64) -> u32 {
    word as u32
}

/// The 30-bit tag stored in a cell word (0 = never mutated by a tagged
/// operation).
#[inline]
pub fn tag(word: u64) -> u32 {
    ((word >> 32) & TAG_MAX as u64) as u32
}

/// Initializes a cell word with an untagged value (tag 0), for harness
/// setup of initial memory contents.
#[inline]
pub fn untagged(value: u32) -> u64 {
    value as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let w = pack(0x3abc_def0 & TAG_MAX, 0x1234_5678);
        assert_eq!(value(w), 0x1234_5678);
        assert_eq!(tag(w), 0x3abc_def0 & TAG_MAX);
    }

    #[test]
    fn top_two_bits_stay_clear() {
        let w = pack(TAG_MAX, u32::MAX);
        assert_eq!(w >> 62, 0, "cell word must fit a 62-bit log payload");
    }

    #[test]
    fn untagged_has_zero_tag() {
        let w = untagged(99);
        assert_eq!(tag(w), 0);
        assert_eq!(value(w), 99);
    }
}
