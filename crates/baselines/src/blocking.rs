//! Blocking ordered two-phase locking: the classic fine-grained-locks
//! baseline. Each lock is one word (0 free, else holder pid+1); locks are
//! acquired in ascending id order by spinning, the critical section runs
//! raw, and all locks are released in reverse order.
//!
//! Deadlock-free (ordered acquisition) but **blocking**: if the scheduler
//! delays a lock holder forever, every contender spins forever — the
//! failure mode the paper's helping mechanism eliminates. Attempts never
//! "fail" (they wait instead), so `won` is always true when the attempt
//! returns.

use crate::api::{AttemptOutcome, LockAlgo};
use wfl_core::{Scratch, TryLockRequest};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_runtime::{Addr, Ctx, Heap};

/// Blocking two-phase locking over an array of spinlock words.
pub struct BlockingTpl<'a> {
    /// The thunk registry.
    pub registry: &'a Registry,
    locks: Addr,
    nlocks: usize,
}

impl<'a> BlockingTpl<'a> {
    /// Creates the lock words (harness setup).
    pub fn create_root(heap: &Heap, registry: &'a Registry, nlocks: usize) -> BlockingTpl<'a> {
        assert!(nlocks > 0);
        BlockingTpl { registry, locks: heap.alloc_root(nlocks), nlocks }
    }

    fn lock_word(&self, id: u32) -> Addr {
        assert!((id as usize) < self.nlocks, "unknown lock id {id}");
        self.locks.off(id)
    }
}

impl LockAlgo for BlockingTpl<'_> {
    fn name(&self) -> &'static str {
        "blocking"
    }

    fn blocks_under_crash(&self) -> bool {
        true
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let me = ctx.pid() as u64 + 1;
        let order = &mut scratch.order;
        order.clear();
        order.extend(req.locks.iter().map(|l| l.0));
        order.sort_unstable();
        // Acquire in ascending order (deadlock freedom).
        for &id in order.iter() {
            let w = self.lock_word(id);
            loop {
                if ctx.read_acq(w) == 0 && ctx.cas_bool_sync(w, 0, me) {
                    break;
                }
                // Spin; in the simulator this burns scheduled steps, and
                // under a crashed holder it never terminates (by design —
                // that is the baseline's failure mode).
            }
        }
        // Critical section, raw (no helpers exist to race with).
        let frame = Frame::create(ctx, self.registry, req.thunk, tags.next_base(), req.args);
        frame.run_raw(ctx, self.registry);
        // Release in reverse order.
        for &id in scratch.order.iter().rev() {
            ctx.write_rel(self.lock_word(id), 0);
        }
        AttemptOutcome { won: true, steps: ctx.steps() - start }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_core::LockId;
    use wfl_idem::{cell, IdemRun, Thunk};
    use wfl_runtime::schedule::{RoundRobin, SeededRandom, StallWindow, Stalls};
    use wfl_runtime::sim::SimBuilder;

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn counter_is_exact_without_crashes() {
        for seed in 0..10 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 20);
            let algo = BlockingTpl::create_root(&heap, &registry, 2);
            let counter = heap.alloc_root(1);
            let algo_ref = &algo;
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, seed))
                .max_steps(10_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = wfl_core::Scratch::new();
                        for _ in 0..5 {
                            let locks = [LockId(0), LockId(1)];
                            let req = TryLockRequest {
                                locks: &locks,
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                            assert!(out.won);
                        }
                    }
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(counter)), 20, "seed {seed}");
        }
    }

    #[test]
    fn crashed_holder_blocks_everyone() {
        // Process 0 takes the lock then never runs again; process 1 spins
        // until the drain gives up and poisons it: the blocking baseline's
        // non-wait-freedom, made visible.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = BlockingTpl::create_root(&heap, &registry, 1);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        // Crash pid 0 shortly after it acquires (it acquires within its
        // first ~20 steps; crash at t=50 of the round-robin schedule).
        let report = SimBuilder::new(&heap, 2)
            .schedule(Stalls::new(RoundRobin::new(2), vec![StallWindow::crash(0, 50)]))
            .max_steps(20_000)
            .drain_cap(100_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = wfl_core::Scratch::new();
                    let locks = [LockId(0)];
                    let req =
                        TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                    // pid 0: acquire, then "crash" (the schedule stops it
                    // mid-critical-section; it spins on a flag forever).
                    if pid == 0 {
                        algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        // Hold the lock again and never release: simulate
                        // crashing inside the critical section.
                        let w = heap_lock_word(ctx);
                        loop {
                            if ctx.read(w) == 0 && ctx.cas_bool(w, 0, 1) {
                                break;
                            }
                        }
                        loop {
                            ctx.local_step(); // crashed while holding
                        }
                    } else {
                        algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    }
                }
            })
            .run();
        // Someone is poisoned: either the crashed holder (stalled forever)
        // or the spinner (blocked forever) — blocking is not wait-free.
        assert!(!report.poisoned.is_empty(), "expected unbounded blocking");
    }

    /// The first allocation in this test's heap layout after the lock
    /// words: lock word 0 lives at the algo's base.
    fn heap_lock_word(_ctx: &Ctx<'_>) -> Addr {
        // BlockingTpl::create_root allocated the lock array first (word 1).
        Addr(1)
    }
}
