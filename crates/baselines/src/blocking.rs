//! Blocking ordered two-phase locking: the classic fine-grained-locks
//! baseline. Each lock is one word (0 free, else holder pid+1); locks are
//! acquired in ascending id order by spinning, the critical section runs
//! raw, and all locks are released in reverse order.
//!
//! Deadlock-free (ordered acquisition) but **blocking**: if the scheduler
//! delays a lock holder forever, every contender spins forever — the
//! failure mode the paper's helping mechanism eliminates. Attempts never
//! "fail" under normal operation (they wait instead), so `won` is true
//! whenever the critical section ran. The one exception is cooperative
//! shutdown: once the driver raises the stop flag (a timed real-threads
//! run ending, or the simulator entering its drain phase), a spinning
//! acquisition releases whatever it already holds and returns `won ==
//! false` instead of wedging the drain behind a stalled holder.

use crate::api::{AttemptOutcome, LockAlgo};
use wfl_core::{Scratch, TryLockRequest};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_runtime::{Addr, Ctx, Heap, Placement, LINE_WORDS};

/// Contention-management policy of the blocking baseline's spin loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockingMode {
    /// Naked test-and-test-and-set: poll the lock word on every scheduled
    /// step. The historical baseline — and, past ~8 threads, a strawman:
    /// every contender hammers the holder's cache line.
    #[default]
    Spin,
    /// TTAS with bounded exponential backoff between polls (the local-spin
    /// discipline of cohort locks, per Fissile Locks): after each failed
    /// poll the contender burns a doubling number of *local* steps before
    /// touching the shared word again, capped at [`COHORT_MAX_BACKOFF`].
    /// Keeps the 16–64-thread comparison honest — coherence traffic on the
    /// lock line stays bounded instead of scaling with the contender count.
    Cohort,
}

/// Backoff ceiling (local steps between polls) of [`BlockingMode::Cohort`].
/// Bounded so a freed lock is observed within O(cap) own steps.
pub const COHORT_MAX_BACKOFF: u64 = 128;

/// Blocking two-phase locking over an array of spinlock words.
pub struct BlockingTpl<'a> {
    /// The thunk registry.
    pub registry: &'a Registry,
    locks: Addr,
    nlocks: usize,
    /// Words between consecutive lock words: 1 packed, [`LINE_WORDS`]
    /// padded (each lock word owns a cache line).
    stride: u32,
    mode: BlockingMode,
}

impl<'a> BlockingTpl<'a> {
    /// Creates the lock words (harness setup). Packed layout, plain spin —
    /// byte-compatible with the historical baseline (tests pin addresses).
    pub fn create_root(heap: &Heap, registry: &'a Registry, nlocks: usize) -> BlockingTpl<'a> {
        Self::create_root_placed(heap, registry, nlocks, Placement::Packed)
    }

    /// Creates the lock words under an explicit [`Placement`]: padded
    /// spreads each lock word onto its own 64B line so contended spins on
    /// different locks never false-share.
    pub fn create_root_placed(
        heap: &Heap,
        registry: &'a Registry,
        nlocks: usize,
        placement: Placement,
    ) -> BlockingTpl<'a> {
        assert!(nlocks > 0);
        let (locks, stride) = match placement {
            Placement::Packed => (heap.alloc_root(nlocks), 1),
            Placement::Padded => {
                (heap.alloc_root_aligned(nlocks * LINE_WORDS), LINE_WORDS as u32)
            }
        };
        BlockingTpl { registry, locks, nlocks, stride, mode: BlockingMode::default() }
    }

    /// This baseline with a different spin policy.
    pub fn with_mode(mut self, mode: BlockingMode) -> BlockingTpl<'a> {
        self.mode = mode;
        self
    }

    fn lock_word(&self, id: u32) -> Addr {
        assert!((id as usize) < self.nlocks, "unknown lock id {id}");
        self.locks.off(id * self.stride)
    }
}

impl LockAlgo for BlockingTpl<'_> {
    fn name(&self) -> &'static str {
        match self.mode {
            BlockingMode::Spin => "blocking",
            BlockingMode::Cohort => "blocking-cohort",
        }
    }

    fn blocks_under_crash(&self) -> bool {
        true
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let deadline = scratch.deadline;
        let me = ctx.pid() as u64 + 1;
        {
            let order = &mut scratch.order;
            order.clear();
            order.extend(req.locks.iter().map(|l| l.0));
            order.sort_unstable();
        }
        // Acquire in ascending order (deadlock freedom).
        let mut acquired = 0usize;
        for i in 0..scratch.order.len() {
            let w = self.lock_word(scratch.order[i]);
            // Cohort backoff state, reset per lock: the holder change that
            // freed the previous lock says nothing about this one.
            let mut backoff = 1u64;
            loop {
                // TTAS: the read filters the CAS, so only contenders that
                // just observed the word free write to the line.
                if ctx.read_acq(w) == 0 && ctx.cas_bool_sync(w, 0, me) {
                    acquired += 1;
                    break;
                }
                // Spin; in the simulator this burns scheduled steps, and
                // under a crashed holder it never terminates *unless* the
                // driver is draining or the caller armed a deadline — then
                // bail out, releasing everything held so far, so shutdown
                // (and an SLO-bounded attempt) stays wait-free even for the
                // blocking baseline. Note a stalled *holder* still blocks:
                // an expired contender gives up, but a contender whose
                // deadline has not expired keeps spinning — the collapse
                // E16 measures.
                if ctx.stop_requested() || deadline.expired(ctx) {
                    for &held in scratch.order[..acquired].iter().rev() {
                        ctx.write_rel(self.lock_word(held), 0);
                    }
                    return AttemptOutcome {
                        won: false,
                        steps: ctx.steps() - start,
                        aborted: true,
                        rescued: false,
                        combined: false,
                        combined_peers: 0,
                    };
                }
                if self.mode == BlockingMode::Cohort {
                    // Local spin between polls: counted own steps that
                    // touch no shared memory, doubling up to the cap.
                    for _ in 0..backoff {
                        ctx.local_step();
                    }
                    backoff = (backoff * 2).min(COHORT_MAX_BACKOFF);
                }
            }
        }
        // Critical section, raw (no helpers exist to race with).
        let frame = Frame::create(ctx, self.registry, req.thunk, tags.next_base(), req.args);
        frame.run_raw(ctx, self.registry);
        // Release in reverse order.
        for &id in scratch.order.iter().rev() {
            ctx.write_rel(self.lock_word(id), 0);
        }
        AttemptOutcome::decided(true, ctx.steps() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_core::LockId;
    use wfl_idem::{cell, IdemRun, Thunk};
    use wfl_runtime::schedule::{RoundRobin, SeededRandom, StallWindow, Stalls};
    use wfl_runtime::sim::SimBuilder;

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn counter_is_exact_without_crashes() {
        for seed in 0..10 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 20);
            let algo = BlockingTpl::create_root(&heap, &registry, 2);
            let counter = heap.alloc_root(1);
            let algo_ref = &algo;
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, seed))
                .max_steps(10_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = wfl_core::Scratch::new();
                        for _ in 0..5 {
                            let locks = [LockId(0), LockId(1)];
                            let req = TryLockRequest {
                                locks: &locks,
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                            assert!(out.won);
                        }
                    }
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(counter)), 20, "seed {seed}");
        }
    }

    #[test]
    fn cohort_mode_counter_is_exact_and_renamed() {
        for seed in 0..10 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 20);
            let algo = BlockingTpl::create_root_placed(&heap, &registry, 2, Placement::Padded)
                .with_mode(BlockingMode::Cohort);
            assert_eq!(algo.name(), "blocking-cohort");
            let counter = heap.alloc_root(1);
            let algo_ref = &algo;
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, seed))
                .max_steps(10_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = wfl_core::Scratch::new();
                        for _ in 0..5 {
                            let locks = [LockId(0), LockId(1)];
                            let req = TryLockRequest {
                                locks: &locks,
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                            assert!(out.won, "cohort backoff must still always acquire");
                        }
                    }
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(counter)), 20, "seed {seed}");
        }
    }

    #[test]
    fn padded_lock_words_own_distinct_lines() {
        let registry = Registry::new();
        let heap = Heap::new(1 << 12);
        let algo = BlockingTpl::create_root_placed(&heap, &registry, 4, Placement::Padded);
        let lines: Vec<usize> =
            (0..4).map(|id| algo.lock_word(id).0 as usize / wfl_runtime::LINE_WORDS).collect();
        let mut dedup = lines.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "padded lock words share lines: {lines:?}");
    }

    #[test]
    fn cohort_deadline_still_bails_out() {
        // The backoff loop must not starve the bail-out polls: an armed
        // deadline still aborts a contender spinning on a dead holder.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = BlockingTpl::create_root(&heap, &registry, 1).with_mode(BlockingMode::Cohort);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 2)
            .schedule(RoundRobin::new(2))
            .max_steps(1_000_000)
            .drain_cap(100_000)
            .spawn(move |ctx: &Ctx| {
                let w = Addr(1);
                loop {
                    if ctx.read(w) == 0 && ctx.cas_bool(w, 0, 1) {
                        break;
                    }
                }
                loop {
                    ctx.local_step();
                }
            })
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(1);
                let mut scratch = wfl_core::Scratch::new();
                scratch.deadline = wfl_core::Deadline::after(ctx, 2_000);
                let locks = [LockId(0)];
                let req =
                    TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                assert!(!out.won && out.aborted);
            })
            .run();
        assert_eq!(report.poisoned, vec![0], "the cohort contender must exit on its own");
    }

    #[test]
    fn crashed_holder_blocks_everyone() {
        // Process 0 takes the lock then never runs again; process 1 spins
        // until the drain gives up and poisons it: the blocking baseline's
        // non-wait-freedom, made visible.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = BlockingTpl::create_root(&heap, &registry, 1);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        // Crash pid 0 shortly after it acquires (it acquires within its
        // first ~20 steps; crash at t=50 of the round-robin schedule).
        let report = SimBuilder::new(&heap, 2)
            .schedule(Stalls::new(RoundRobin::new(2), vec![StallWindow::crash(0, 50)]))
            .max_steps(20_000)
            .drain_cap(100_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = wfl_core::Scratch::new();
                    let locks = [LockId(0)];
                    let req =
                        TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                    // pid 0: acquire, then "crash" (the schedule stops it
                    // mid-critical-section; it spins on a flag forever).
                    if pid == 0 {
                        algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        // Hold the lock again and never release: simulate
                        // crashing inside the critical section.
                        let w = heap_lock_word(ctx);
                        loop {
                            if ctx.read(w) == 0 && ctx.cas_bool(w, 0, 1) {
                                break;
                            }
                        }
                        loop {
                            ctx.local_step(); // crashed while holding
                        }
                    } else {
                        algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    }
                }
            })
            .run();
        // Someone is poisoned: either the crashed holder (stalled forever)
        // or the spinner (blocked forever) — blocking is not wait-free.
        assert!(!report.poisoned.is_empty(), "expected unbounded blocking");
    }

    /// The first allocation in this test's heap layout after the lock
    /// words: lock word 0 lives at the algo's base.
    fn heap_lock_word(_ctx: &Ctx<'_>) -> Addr {
        // BlockingTpl::create_root allocated the lock array first (word 1).
        Addr(1)
    }

    #[test]
    fn drain_bails_out_spinners_with_a_failed_attempt() {
        // A holder that never releases used to wedge every contender until
        // the simulator poisoned them. With the stop-aware spin, the
        // contender observes the drain's stop flag, releases nothing it
        // doesn't hold, and returns `won == false` — only the genuinely
        // stuck holder is poisoned, and the critical section never ran.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = BlockingTpl::create_root(&heap, &registry, 1);
        let counter = heap.alloc_root(1);
        let outcome_out = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 2)
            .schedule(RoundRobin::new(2))
            .max_steps(5_000)
            .drain_cap(100_000)
            .spawn(move |ctx: &Ctx| {
                // pid 0: grab the lock word raw and never release (a crashed
                // holder), ignoring the stop flag.
                let w = heap_lock_word(ctx);
                loop {
                    if ctx.read(w) == 0 && ctx.cas_bool(w, 0, 1) {
                        break;
                    }
                }
                loop {
                    ctx.local_step();
                }
            })
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(1);
                let mut scratch = wfl_core::Scratch::new();
                let locks = [LockId(0)];
                let req =
                    TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                ctx.heap().poke(outcome_out, 1 + out.won as u64);
            })
            .run();
        assert_eq!(report.poisoned, vec![0], "only the stuck holder is poisoned");
        assert_eq!(heap.peek(outcome_out), 1, "spinner must bail with won == false");
        assert_eq!(cell::value(heap.peek(counter)), 0, "bailed attempt must not run the thunk");
    }

    #[test]
    fn deadline_bails_out_of_a_contended_spin() {
        // Same shape as the stop-flag bail-out, but driven by an armed
        // scratch deadline: the contender acquires lock 0, spins on lock 1
        // (held by the crashed pid 0), and gives up once its own-step
        // deadline passes — releasing lock 0 and reporting an abort, long
        // before the drain phase would have rescued it.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = BlockingTpl::create_root(&heap, &registry, 2);
        let counter = heap.alloc_root(1);
        let out_cell = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 2)
            .schedule(RoundRobin::new(2))
            .max_steps(1_000_000)
            .drain_cap(100_000)
            .spawn(move |ctx: &Ctx| {
                // pid 0: hold lock word 1 forever.
                let w = Addr(2);
                loop {
                    if ctx.read(w) == 0 && ctx.cas_bool(w, 0, 1) {
                        break;
                    }
                }
                loop {
                    ctx.local_step();
                }
            })
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(1);
                let mut scratch = wfl_core::Scratch::new();
                scratch.deadline = wfl_core::Deadline::after(ctx, 500);
                let locks = [LockId(0), LockId(1)];
                let req =
                    TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                assert!(!out.won);
                assert!(out.aborted, "deadline expiry must be reported as an abort");
                assert!(!out.rescued, "no helpers exist in the blocking baseline");
                ctx.heap().poke(out_cell, 1);
            })
            .run();
        assert_eq!(report.poisoned, vec![0], "the contender must exit on its own");
        assert_eq!(heap.peek(out_cell), 1, "the contender's attempt must return");
        assert_eq!(heap.peek(Addr(1)), 0, "lock 0 must be released on deadline bail-out");
        assert_eq!(heap.peek(Addr(2)), 1, "lock 1 still held by the crashed holder");
        assert_eq!(cell::value(heap.peek(counter)), 0, "aborted attempt must not run the thunk");
    }

    #[test]
    fn bailout_releases_partially_acquired_locks() {
        // The contender acquires lock 0, then spins on lock 1 (held by the
        // crashed pid 0). On bail-out it must release lock 0, or shutdown
        // would leak a held lock into any later inspection.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = BlockingTpl::create_root(&heap, &registry, 2);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 2)
            .schedule(RoundRobin::new(2))
            .max_steps(5_000)
            .drain_cap(100_000)
            .spawn(move |ctx: &Ctx| {
                // pid 0: hold lock word 1 forever.
                let w = Addr(2); // second lock word of the array at Addr(1)
                loop {
                    if ctx.read(w) == 0 && ctx.cas_bool(w, 0, 1) {
                        break;
                    }
                }
                loop {
                    ctx.local_step();
                }
            })
            .spawn(move |ctx: &Ctx| {
                let mut tags = TagSource::new(1);
                let mut scratch = wfl_core::Scratch::new();
                let locks = [LockId(0), LockId(1)];
                let req =
                    TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                assert!(!out.won);
            })
            .run();
        assert_eq!(report.poisoned, vec![0]);
        assert_eq!(heap.peek(Addr(1)), 0, "lock 0 must be released on bail-out");
        assert_eq!(heap.peek(Addr(2)), 1, "lock 1 still held by the crashed holder");
    }
}
