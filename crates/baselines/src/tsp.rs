//! Lock-free locks with recursive helping, in the style of Turek, Shasha &
//! Prakash (PODS '92) and Barnes (SPAA '93), §3 of the paper.
//!
//! Each lock is a word holding the address of the descriptor that owns it
//! (0 = free). An attempt publishes a descriptor and acquires its locks in
//! ascending order; on meeting a held lock it **recursively helps** the
//! holder run its critical section and release, then retries. Crashed
//! holders are therefore tolerated (their work is finished by others), and
//! the critical section runs idempotently through `wfl-idem` because many
//! helpers may race on it.
//!
//! The scheme is **lock-free but not wait-free**: an attempt can help an
//! unbounded chain of other attempts before making progress, so there is
//! no per-attempt step bound and no fairness bound — the two properties
//! the paper's algorithm adds. Attempts here always eventually succeed
//! (`won` is always true), matching the original blocking-style usage.

use crate::api::{AttemptOutcome, LockAlgo};
use wfl_core::{Scratch, TryLockRequest};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_runtime::{Addr, Ctx, Heap, Placement, LINE_WORDS};

/// TSP-style lock-free locks.
pub struct TspLock<'a> {
    /// The thunk registry.
    pub registry: &'a Registry,
    locks: Addr,
    nlocks: usize,
    /// Words between consecutive lock words (1 packed, a line padded).
    /// Descriptors need no placement knob: they are allocated per-attempt
    /// from the owner's lane, which is already cache-line isolated.
    stride: u32,
}

// Descriptor layout: [frame, nlocks, done, lock ids...]
const D_FRAME: u32 = 0;
const D_NLOCKS: u32 = 1;
const D_DONE: u32 = 2;
const D_LOCKS: u32 = 3;

impl<'a> TspLock<'a> {
    /// Creates the lock words (harness setup). Packed layout.
    pub fn create_root(heap: &Heap, registry: &'a Registry, nlocks: usize) -> TspLock<'a> {
        Self::create_root_placed(heap, registry, nlocks, Placement::Packed)
    }

    /// Creates the lock words under an explicit [`Placement`]: padded puts
    /// each descriptor-pointer word on its own 64B line.
    pub fn create_root_placed(
        heap: &Heap,
        registry: &'a Registry,
        nlocks: usize,
        placement: Placement,
    ) -> TspLock<'a> {
        assert!(nlocks > 0);
        let (locks, stride) = match placement {
            Placement::Packed => (heap.alloc_root(nlocks), 1),
            Placement::Padded => {
                (heap.alloc_root_aligned(nlocks * LINE_WORDS), LINE_WORDS as u32)
            }
        };
        TspLock { registry, locks, nlocks, stride }
    }

    fn lock_word(&self, id: u64) -> Addr {
        assert!((id as usize) < self.nlocks, "unknown lock id {id}");
        self.locks.off(id as u32 * self.stride)
    }

    /// Runs (or helps run) a published descriptor to completion: acquire
    /// all its locks (helping holders recursively), run its thunk
    /// idempotently, mark done, release. `depth` caps the helping
    /// recursion (chains are bounded by the number of processes).
    fn help(&self, ctx: &Ctx<'_>, desc: Addr, depth: usize) {
        loop {
            if ctx.read_acq(desc.off(D_DONE)) != 0 {
                // Finished (by us or another helper): scrub any lock this
                // descriptor still appears in (covers re-acquisition races)
                self.scrub_release(ctx, desc);
                return;
            }
            let n = ctx.read_acq(desc.off(D_NLOCKS)) as u32;
            let mut all = true;
            for i in 0..n {
                let id = ctx.read_acq(desc.off(D_LOCKS + i));
                let w = self.lock_word(id);
                let v = ctx.read_acq(w);
                if v == desc.to_word() {
                    continue; // already held for this descriptor
                }
                if v == 0 {
                    if ctx.cas_bool_sync(w, 0, desc.to_word()) {
                        continue;
                    }
                    all = false;
                    break;
                }
                // Held by another descriptor: recursive ("altruistic")
                // helping, the hallmark of TSP/Barnes.
                if depth > 0 {
                    self.help(ctx, Addr::from_word(v), depth - 1);
                }
                all = false;
                break;
            }
            if all {
                Frame(Addr::from_word(ctx.read_acq(desc.off(D_FRAME)))).help(ctx, self.registry);
                ctx.write_rel(desc.off(D_DONE), 1);
                self.scrub_release(ctx, desc);
                return;
            }
        }
    }

    /// Releases every lock word that still points at `desc` (idempotent).
    fn scrub_release(&self, ctx: &Ctx<'_>, desc: Addr) {
        let n = ctx.read_acq(desc.off(D_NLOCKS)) as u32;
        for i in 0..n {
            let id = ctx.read_acq(desc.off(D_LOCKS + i));
            ctx.cas_bool_sync(self.lock_word(id), desc.to_word(), 0);
        }
    }
}

impl LockAlgo for TspLock<'_> {
    fn name(&self) -> &'static str {
        "tsp"
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let frame = Frame::create(ctx, self.registry, req.thunk, tags.next_base(), req.args);
        let order = &mut scratch.order;
        order.clear();
        order.extend(req.locks.iter().map(|l| l.0));
        order.sort_unstable();
        let desc = ctx.alloc(D_LOCKS as usize + order.len());
        // Private until the acquisition CAS publishes the descriptor.
        ctx.write_rel(desc.off(D_FRAME), frame.0.to_word());
        ctx.write_rel(desc.off(D_NLOCKS), order.len() as u64);
        for (i, &id) in order.iter().enumerate() {
            ctx.write_rel(desc.off(D_LOCKS + i as u32), id as u64);
        }
        self.help(ctx, desc, ctx.nprocs() + 1);
        AttemptOutcome::decided(true, ctx.steps() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_core::LockId;
    use wfl_idem::{cell, IdemRun, Thunk};
    use wfl_runtime::schedule::{RoundRobin, SeededRandom, StallWindow, Stalls};
    use wfl_runtime::sim::SimBuilder;

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn counter_exact_under_contention() {
        for seed in 0..10 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 20);
            let algo = TspLock::create_root(&heap, &registry, 3);
            let counter = heap.alloc_root(1);
            let algo_ref = &algo;
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, seed))
                .max_steps(20_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = wfl_core::Scratch::new();
                        for round in 0..5 {
                            let locks = [
                                LockId(((pid + round) % 3) as u32),
                                LockId(((pid + round + 1) % 3) as u32),
                            ];
                            let req = TryLockRequest {
                                locks: &locks,
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            let out = algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                            assert!(out.won, "TSP attempts always complete");
                        }
                    }
                })
                .run();
            report.assert_clean();
            assert_eq!(cell::value(heap.peek(counter)), 20, "seed {seed}");
        }
    }

    #[test]
    fn crashed_holder_is_helped_to_completion() {
        // Process 0 crashes mid-attempt; process 1 helps it finish and
        // then completes its own attempts. Both critical sections run.
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 20);
        let algo = TspLock::create_root(&heap, &registry, 1);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 2)
            // pid 0 gets only its first ~40 steps, enough to publish its
            // descriptor and acquire, then crashes.
            .schedule(Stalls::new(RoundRobin::new(2), vec![StallWindow::crash(0, 80)]))
            .max_steps(2_000_000)
            .drain_cap(2_000_000)
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = wfl_core::Scratch::new();
                    let locks = [LockId(0)];
                    let req =
                        TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                    if pid == 0 {
                        algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    } else {
                        for _ in 0..3 {
                            algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                        }
                    }
                }
            })
            .run();
        // pid 0 may be parked mid-attempt forever (poisoned) or may have
        // finished in the drain; either way pid 1 completed all 3 attempts
        // and pid 0's critical section ran (helped) at most/exactly once.
        let c = cell::value(heap.peek(counter));
        assert!(c == 3 || c == 4, "expected 3 (+1 if pid 0 published) increments, got {c}");
        assert!(report.panics.is_empty());
    }
}
