//! The no-helping tryLock baseline: CAS each lock in ascending order;
//! on the first conflict, release everything acquired and fail.
//!
//! Per-attempt steps are bounded (like the paper's algorithm) but there is
//! no helping: a process that crashes between acquiring and releasing
//! leaves its locks claimed forever, after which every attempt touching
//! them fails — the motivating failure the paper's idempotent helping
//! removes. There is also no fairness bound: under contention, attempts
//! can fail at arbitrarily high rates (livelock).

use crate::api::{AttemptOutcome, LockAlgo};
use wfl_core::{Scratch, TryLockRequest};
use wfl_idem::{Frame, Registry, TagSource};
use wfl_runtime::{Addr, Ctx, Heap, Placement, LINE_WORDS};

/// No-helping tryLock over an array of CAS lock words.
pub struct NaiveTryLock<'a> {
    /// The thunk registry.
    pub registry: &'a Registry,
    locks: Addr,
    nlocks: usize,
    /// Words between consecutive lock words (1 packed, a line padded).
    stride: u32,
}

impl<'a> NaiveTryLock<'a> {
    /// Creates the lock words (harness setup). Packed layout, kept
    /// byte-compatible for address-pinned tests.
    pub fn create_root(heap: &Heap, registry: &'a Registry, nlocks: usize) -> NaiveTryLock<'a> {
        Self::create_root_placed(heap, registry, nlocks, Placement::Packed)
    }

    /// Creates the lock words under an explicit [`Placement`]: padded puts
    /// each CAS word on its own 64B line so failed probes of different
    /// locks never false-share.
    pub fn create_root_placed(
        heap: &Heap,
        registry: &'a Registry,
        nlocks: usize,
        placement: Placement,
    ) -> NaiveTryLock<'a> {
        assert!(nlocks > 0);
        let (locks, stride) = match placement {
            Placement::Packed => (heap.alloc_root(nlocks), 1),
            Placement::Padded => {
                (heap.alloc_root_aligned(nlocks * LINE_WORDS), LINE_WORDS as u32)
            }
        };
        NaiveTryLock { registry, locks, nlocks, stride }
    }

    fn lock_word(&self, id: u32) -> Addr {
        assert!((id as usize) < self.nlocks, "unknown lock id {id}");
        self.locks.off(id * self.stride)
    }
}

impl LockAlgo for NaiveTryLock<'_> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn blocks_under_crash(&self) -> bool {
        // Attempts stay bounded, but locks become permanently unavailable:
        // progress (not steps) is what blocks.
        true
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let start = ctx.steps();
        let me = ctx.pid() as u64 + 1;
        let order = &mut scratch.order;
        order.clear();
        order.extend(req.locks.iter().map(|l| l.0));
        order.sort_unstable();
        for i in 0..order.len() {
            if !ctx.cas_bool_sync(self.lock_word(order[i]), 0, me) {
                // Conflict: back out everything acquired so far.
                for &rid in order[..i].iter().rev() {
                    ctx.write_rel(self.lock_word(rid), 0);
                }
                return AttemptOutcome::decided(false, ctx.steps() - start);
            }
        }
        let frame = Frame::create(ctx, self.registry, req.thunk, tags.next_base(), req.args);
        frame.run_raw(ctx, self.registry);
        for &id in scratch.order.iter().rev() {
            ctx.write_rel(self.lock_word(id), 0);
        }
        AttemptOutcome::decided(true, ctx.steps() - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfl_core::LockId;
    use wfl_idem::{cell, IdemRun, Thunk};
    use wfl_runtime::schedule::SeededRandom;
    use wfl_runtime::sim::SimBuilder;

    struct Incr;
    impl Thunk for Incr {
        fn run(&self, run: &mut IdemRun<'_, '_>) {
            let c = Addr::from_word(run.arg(0));
            let v = run.read(c);
            run.write(c, v + 1);
        }
        fn max_ops(&self) -> usize {
            2
        }
    }

    #[test]
    fn wins_are_counted_exactly_and_failures_leave_no_trace() {
        for seed in 0..10 {
            let mut registry = Registry::new();
            let incr = registry.register(Incr);
            let heap = Heap::new(1 << 20);
            let algo = NaiveTryLock::create_root(&heap, &registry, 3);
            let counter = heap.alloc_root(1);
            let wins = heap.alloc_root(4);
            let algo_ref = &algo;
            let report = SimBuilder::new(&heap, 4)
                .schedule(SeededRandom::new(4, seed))
                .max_steps(10_000_000)
                .spawn_all(|pid| {
                    move |ctx: &Ctx| {
                        let mut tags = TagSource::new(pid);
                        let mut scratch = wfl_core::Scratch::new();
                        let mut w = 0u64;
                        for round in 0..6 {
                            let locks =
                                [LockId(((pid + round) % 3) as u32), LockId(((pid + round + 1) % 3) as u32)];
                            let req = TryLockRequest {
                                locks: &locks,
                                thunk: incr,
                                args: &[counter.to_word()],
                            };
                            if algo_ref.attempt(ctx, &mut tags, &mut scratch, &req).won {
                                w += 1;
                            }
                        }
                        ctx.write(wins.off(pid as u32), w);
                    }
                })
                .run();
            report.assert_clean();
            let total: u64 = (0..4).map(|i| heap.peek(wins.off(i))).sum();
            assert_eq!(cell::value(heap.peek(counter)) as u64, total, "seed {seed}");
        }
    }

    #[test]
    fn locks_are_free_after_any_outcome() {
        let mut registry = Registry::new();
        let incr = registry.register(Incr);
        let heap = Heap::new(1 << 16);
        let algo = NaiveTryLock::create_root(&heap, &registry, 2);
        let counter = heap.alloc_root(1);
        let algo_ref = &algo;
        let report = SimBuilder::new(&heap, 2)
            .schedule(SeededRandom::new(2, 5))
            .spawn_all(|pid| {
                move |ctx: &Ctx| {
                    let mut tags = TagSource::new(pid);
                    let mut scratch = wfl_core::Scratch::new();
                    for _ in 0..4 {
                        let locks = [LockId(0), LockId(1)];
                        let req =
                            TryLockRequest { locks: &locks, thunk: incr, args: &[counter.to_word()] };
                        algo_ref.attempt(ctx, &mut tags, &mut scratch, &req);
                    }
                }
            })
            .run();
        report.assert_clean();
        // Both lock words must be free at quiescence (failed attempts
        // backed out, successful ones released).
        assert_eq!(heap.peek(Addr(1)), 0);
        assert_eq!(heap.peek(Addr(2)), 0);
    }
}
