//! The common interface the experiment harness uses to drive any of the
//! lock algorithms (the paper's and the baselines).

use wfl_core::{
    try_locks, try_locks_unknown, LockConfig, LockSpace, Scratch, TryLockRequest, UnknownConfig,
};
use wfl_idem::{Registry, TagSource};
use wfl_runtime::Ctx;

/// Outcome of one attempt under any algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptOutcome {
    /// Whether the critical section ran.
    pub won: bool,
    /// Own steps consumed by the attempt.
    pub steps: u64,
    /// The attempt was abandoned mid-flight (armed [`wfl_core::Deadline`]
    /// expired, or the stop flag was seen while a deadline was armed)
    /// rather than losing to a competitor.
    pub aborted: bool,
    /// The attempt was abandoned, but a competitor's helping completed it
    /// anyway (`won` is also true). `rescued / aborted` is E16's
    /// abandoned-attempt helping rate.
    pub rescued: bool,
    /// The win was executed by a combining peer (wfl's `CombineMode`
    /// batch, or a delegation combiner for fc/ccsynch): `won` is true and
    /// the critical section ran on another process's timeline. Disjoint
    /// from `rescued` by construction (E17).
    pub combined: bool,
    /// For a combining winner: pending peer thunks it executed in its
    /// batch before releasing (the E17 combine-batch histogram source).
    pub combined_peers: u64,
}

impl AttemptOutcome {
    /// An outcome that ran to a decision (no abort machinery involved).
    pub fn decided(won: bool, steps: u64) -> AttemptOutcome {
        AttemptOutcome {
            won,
            steps,
            aborted: false,
            rescued: false,
            combined: false,
            combined_peers: 0,
        }
    }
}

/// A multi-lock algorithm driven by the shared harness.
///
/// Implementations hold references to their setup-time state (lock words or
/// active sets, the thunk registry, configuration); `attempt` must be safe
/// to call from many processes concurrently.
pub trait LockAlgo: Sync {
    /// A short name for tables ("wfl", "tsp", "blocking", "naive").
    fn name(&self) -> &'static str;

    /// Executes one tryLock attempt: acquire `req.locks`, run `req.thunk`,
    /// release. `won == false` means the critical section did not run (for
    /// algorithms that cannot fail, `won` is always true).
    ///
    /// `tags` and `scratch` are the calling process's private attempt
    /// state; reusing one [`Scratch`] across attempts keeps the hot path
    /// allocation-free.
    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome;

    /// Whether a crashed process can block others forever (used by the
    /// harness to pick crash-tolerant expectations in E8).
    fn blocks_under_crash(&self) -> bool {
        false
    }
}

/// The paper's known-bounds algorithm (§6) behind the harness interface.
pub struct WflKnown<'a> {
    /// The lock space (active sets sized `κ`).
    pub space: &'a LockSpace,
    /// The thunk registry.
    pub registry: &'a Registry,
    /// Bounds and delay constants.
    pub cfg: LockConfig,
}

impl LockAlgo for WflKnown<'_> {
    fn name(&self) -> &'static str {
        "wfl"
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let m = try_locks(ctx, self.space, self.registry, &self.cfg, tags, scratch, *req);
        AttemptOutcome {
            won: m.won,
            steps: m.steps,
            aborted: m.aborted.is_some(),
            rescued: m.rescued,
            combined: m.combined,
            combined_peers: m.combined_peers,
        }
    }
}

/// The paper's unknown-bounds algorithm (§6.2) behind the harness
/// interface.
pub struct WflUnknown<'a> {
    /// The lock space (active sets sized `P`).
    pub space: &'a LockSpace,
    /// The thunk registry.
    pub registry: &'a Registry,
    /// Ablation switches.
    pub cfg: UnknownConfig,
}

impl LockAlgo for WflUnknown<'_> {
    fn name(&self) -> &'static str {
        "wfl-unknown"
    }

    fn attempt(
        &self,
        ctx: &Ctx<'_>,
        tags: &mut TagSource,
        scratch: &mut Scratch,
        req: &TryLockRequest<'_>,
    ) -> AttemptOutcome {
        let m = try_locks_unknown(ctx, self.space, self.registry, &self.cfg, tags, scratch, *req);
        AttemptOutcome {
            won: m.won,
            steps: m.steps,
            aborted: m.aborted.is_some(),
            rescued: m.rescued,
            combined: false,
            combined_peers: 0,
        }
    }
}
