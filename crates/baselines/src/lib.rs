//! Baseline multi-lock algorithms that the paper compares against in prose
//! (§3, Related Work), implemented over the same substrate for head-to-head
//! experiments (E8):
//!
//! * [`tsp::TspLock`] — lock-free locks in the style of Turek, Shasha &
//!   Prakash / Barnes: ordered (two-phase) acquisition with *recursive
//!   helping*; crashes are tolerated (helpers finish the holder's critical
//!   section) but per-attempt steps are unbounded — lock-free, not
//!   wait-free, and no fairness bound.
//! * [`blocking::BlockingTpl`] — classic blocking two-phase locking with
//!   ordered spinlocks. Fast when nothing goes wrong; a single crashed
//!   holder blocks everyone forever (the simulator reports the spinners as
//!   poisoned).
//! * [`naive::NaiveTryLock`] — a tryLock with no helping: CAS each lock in
//!   order, releasing everything on first conflict. Bounded steps, but a
//!   crashed winner leaves its locks stuck forever and contention collapses
//!   throughput (no fairness bound either).
//!
//! All three implement [`api::LockAlgo`], as does the paper's algorithm via
//! [`api::WflKnown`], so harnesses and benches can swap algorithms freely.

pub mod api;
pub mod blocking;
pub mod naive;
pub mod tsp;

pub use api::{AttemptOutcome, LockAlgo, WflKnown, WflUnknown};
pub use blocking::{BlockingMode, BlockingTpl};
pub use naive::NaiveTryLock;
pub use tsp::TspLock;
